"""Rule engine for the repro static analyzer.

The analyzer machine-checks invariants that previously lived only in
prose (ARCHITECTURE.md, code comments): lock discipline, async purity,
the exception taxonomy, codec boundaries, wire-protocol completeness,
and harness determinism.  Everything here is stdlib-only (``ast``).

Structure:

* :class:`Finding` — one violation, anchored to ``file:line``, with a
  content-based fingerprint so baseline entries survive line drift;
* :class:`ParsedFile` / :class:`Project` — the scanned tree handed to
  every rule;
* :func:`rule` — registration decorator; a rule is a generator over
  ``(file, line, message)`` triples and the engine stamps severity and
  fingerprints on;
* baseline load/apply/write — accepted pre-existing findings live in a
  committed JSON file and never block CI, while new findings do.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ParsedFile",
    "Project",
    "Rule",
    "all_rules",
    "dotted_name",
    "load_baseline",
    "load_project",
    "render_json",
    "render_text",
    "rule",
    "run_rules",
    "walk_shallow",
    "write_baseline",
]

SEVERITIES = ("error", "warning")

#: Pseudo-rule name attached to files the parser rejects outright.
SYNTAX_RULE = "syntax-error"


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to a ``file:line``."""

    rule: str
    severity: str
    path: str  # posix path as scanned (relative to cwd when possible)
    line: int
    message: str
    source: str  # the stripped source line (fingerprint input)

    @property
    def fingerprint(self) -> str:
        """Content-based identity: rule + path + stripped source line.

        Line numbers are deliberately left out so unrelated edits above
        a baselined site do not invalidate its baseline entry.
        """
        payload = f"{self.rule}\n{self.path}\n{self.source}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    @property
    def anchor(self) -> str:
        return f"{self.path}:{self.line}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "source": self.source,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ParsedFile:
    """One scanned source file: raw text, line table, and AST."""

    path: Path
    relpath: str
    source: str
    lines: list[str]
    tree: ast.Module | None
    parse_error: str | None = None
    parse_error_line: int = 1

    @property
    def name(self) -> str:
        return self.path.name

    @property
    def parts(self) -> tuple[str, ...]:
        return tuple(self.relpath.split("/"))

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


@dataclass
class Project:
    """The full scanned tree, shared by every rule invocation."""

    files: list[ParsedFile]

    def named(self, filename: str) -> list[ParsedFile]:
        return [pf for pf in self.files if pf.name == filename]

    def under(self, directory: str) -> list[ParsedFile]:
        return [pf for pf in self.files if directory in pf.parts[:-1]]


CheckFn = Callable[[Project], Iterable[tuple[ParsedFile, int, str]]]


@dataclass(frozen=True)
class Rule:
    name: str
    severity: str
    summary: str
    check: CheckFn


_RULES: dict[str, Rule] = {}


def rule(name: str, *, severity: str = "error") -> Callable[[CheckFn], CheckFn]:
    """Register a check function under ``name``.

    The check receives a :class:`Project` and yields
    ``(ParsedFile, lineno, message)`` triples; the engine turns them
    into :class:`Finding` records stamped with the rule's severity.
    """
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def register(func: CheckFn) -> CheckFn:
        if name in _RULES:
            raise ValueError(f"duplicate rule name {name!r}")
        doc = (func.__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else ""
        _RULES[name] = Rule(name, severity, summary, func)
        return func

    return register


def all_rules() -> list[Rule]:
    return [_RULES[name] for name in sorted(_RULES)]


def get_rule(name: str) -> Rule:
    try:
        return _RULES[name]
    except KeyError:
        raise ValueError(f"unknown rule {name!r}") from None


# ----------------------------------------------------------------------
# Loading the tree.
# ----------------------------------------------------------------------


def _relative(path: Path) -> str:
    """Posix path relative to cwd when inside it, else as given.

    CI and the documented workflow run the analyzer from the repo root,
    which keeps baseline fingerprints stable (they hash this path).
    """
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def parse_file(path: Path) -> ParsedFile:
    source = path.read_text(encoding="utf-8")
    parsed = ParsedFile(
        path=path,
        relpath=_relative(path),
        source=source,
        lines=source.splitlines(),
        tree=None,
    )
    try:
        parsed.tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        parsed.parse_error = error.msg or "syntax error"
        parsed.parse_error_line = error.lineno or 1
    return parsed


def load_project(paths: Iterable[Path]) -> Project:
    seen: set[Path] = set()
    files: list[ParsedFile] = []
    for root in paths:
        if root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            candidates = [root]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen or candidate.suffix != ".py":
                continue
            seen.add(resolved)
            files.append(parse_file(candidate))
    return Project(files=files)


# ----------------------------------------------------------------------
# Running rules.
# ----------------------------------------------------------------------


def run_rules(project: Project, rules: Iterable[Rule] | None = None) -> list[Finding]:
    """Run every (or the given) registered rule over the project."""
    findings: list[Finding] = []
    for parsed in project.files:
        if parsed.parse_error is not None:
            findings.append(
                Finding(
                    rule=SYNTAX_RULE,
                    severity="error",
                    path=parsed.relpath,
                    line=parsed.parse_error_line,
                    message=f"file does not parse: {parsed.parse_error}",
                    source=parsed.line(parsed.parse_error_line),
                )
            )
    for entry in rules if rules is not None else all_rules():
        for parsed, lineno, message in entry.check(project):
            findings.append(
                Finding(
                    rule=entry.name,
                    severity=entry.severity,
                    path=parsed.relpath,
                    line=lineno,
                    message=message,
                    source=parsed.line(lineno),
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return findings


# ----------------------------------------------------------------------
# Baseline: accepted pre-existing findings.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    reason: str

    def to_json(self) -> dict[str, str]:
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "reason": self.reason,
        }


@dataclass
class Baseline:
    entries: list[BaselineEntry]

    def split(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding], list[BaselineEntry]]:
        """Partition findings into (active, suppressed) + stale entries.

        A finding is suppressed when its fingerprint matches a baseline
        entry; entries matching nothing are *stale* — reported so the
        baseline shrinks as sites get fixed, but never a failure.
        """
        by_print = {entry.fingerprint: entry for entry in self.entries}
        active: list[Finding] = []
        suppressed: list[Finding] = []
        used: set[str] = set()
        for finding in findings:
            if finding.fingerprint in by_print:
                used.add(finding.fingerprint)
                suppressed.append(finding)
            else:
                active.append(finding)
        stale = [entry for entry in self.entries if entry.fingerprint not in used]
        return active, suppressed, stale


def load_baseline(path: Path) -> Baseline:
    """Load and validate the committed baseline file.

    Every entry must carry a non-empty one-line justification; a
    baseline that silences findings without saying why is rejected.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ValueError(f"unreadable baseline {path}: {error}") from error
    entries_raw = payload.get("entries") if isinstance(payload, dict) else None
    if not isinstance(entries_raw, list):
        raise ValueError(f"baseline {path} must be an object with an 'entries' list")
    entries: list[BaselineEntry] = []
    for index, item in enumerate(entries_raw):
        if not isinstance(item, dict):
            raise ValueError(f"baseline entry #{index} is not an object")
        try:
            entry = BaselineEntry(
                fingerprint=str(item["fingerprint"]),
                rule=str(item["rule"]),
                path=str(item["path"]),
                reason=str(item["reason"]),
            )
        except KeyError as missing:
            raise ValueError(
                f"baseline entry #{index} is missing key {missing}"
            ) from None
        if not entry.reason.strip():
            raise ValueError(
                f"baseline entry #{index} ({entry.rule} in {entry.path}) "
                "has an empty reason; every accepted finding needs a "
                "one-line justification"
            )
        entries.append(entry)
    return Baseline(entries=entries)


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write the current findings out as a fresh baseline skeleton."""
    entries = [
        {
            "fingerprint": finding.fingerprint,
            "rule": finding.rule,
            "path": finding.path,
            "reason": "TODO: one-line justification",
        }
        for finding in findings
    ]
    payload = {
        "comment": (
            "Accepted findings for `python -m repro.analysis`. Each entry "
            "needs a one-line justification; stale entries are reported "
            "and should be deleted. See ARCHITECTURE.md 'Static analysis'."
        ),
        "entries": entries,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------


def render_text(
    active: list[Finding],
    suppressed: list[Finding],
    stale: list[BaselineEntry],
    files_scanned: int,
) -> str:
    lines: list[str] = []
    for finding in active:
        lines.append(
            f"{finding.anchor}: [{finding.rule}] "
            f"{finding.severity}: {finding.message}"
        )
    for entry in stale:
        lines.append(
            f"note: stale baseline entry {entry.fingerprint} "
            f"({entry.rule} in {entry.path}) matched nothing — delete it"
        )
    errors = sum(1 for finding in active if finding.severity == "error")
    warnings = len(active) - errors
    lines.append(
        f"{files_scanned} files scanned: {errors} error(s), "
        f"{warnings} warning(s), {len(suppressed)} baselined, "
        f"{len(stale)} stale baseline entr(y/ies)"
    )
    return "\n".join(lines)


def render_json(
    active: list[Finding],
    suppressed: list[Finding],
    stale: list[BaselineEntry],
    files_scanned: int,
) -> str:
    payload = {
        "files_scanned": files_scanned,
        "rules": [
            {"name": r.name, "severity": r.severity, "summary": r.summary}
            for r in all_rules()
        ],
        "findings": [finding.to_json() for finding in active],
        "baselined": [finding.to_json() for finding in suppressed],
        "stale_baseline": [entry.to_json() for entry in stale],
    }
    return json.dumps(payload, indent=2)


# ----------------------------------------------------------------------
# Shared AST helpers for rule modules.
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``"threading.Lock"`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_shallow(root: ast.AST) -> Iterator[ast.AST]:
    """Walk descendants without entering nested function/lambda bodies.

    Code inside a nested ``def``/``lambda`` runs later (often on an
    executor thread or after a lock is released), so rules about "while
    the lock is held" or "inside this async body" must not see it.
    """
    stack = list(ast.iter_child_nodes(root))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))
