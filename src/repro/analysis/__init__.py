"""Static analysis for the repro stack: ``python -m repro.analysis``.

An AST-based analyzer (stdlib only) that machine-checks the invariants
this codebase otherwise keeps in prose: lock discipline, async purity,
the typed exception taxonomy, codec boundaries, wire-protocol
completeness, and harness determinism.  See ARCHITECTURE.md's
"Static analysis" section for the rule catalogue and the baseline
workflow.
"""

from __future__ import annotations

from repro.analysis.engine import (
    Baseline,
    BaselineEntry,
    Finding,
    ParsedFile,
    Project,
    Rule,
    all_rules,
    load_baseline,
    load_project,
    rule,
    run_rules,
    write_baseline,
)
from repro.analysis import rules  # noqa: F401  (registers the built-in rules)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ParsedFile",
    "Project",
    "Rule",
    "all_rules",
    "load_baseline",
    "load_project",
    "rule",
    "run_rules",
    "write_baseline",
]
