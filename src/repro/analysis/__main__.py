"""CLI for the repro static analyzer.

Usage (from the repository root, so baseline fingerprints are stable)::

    python -m repro.analysis src/                 # text report
    python -m repro.analysis src --format=json    # machine-readable
    python -m repro.analysis src --write-baseline # accept current state
    python -m repro.analysis --list-rules

Exit codes: 0 — clean (every error-severity finding baselined or none),
1 — non-baselined error findings, 2 — usage/configuration problems.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.engine import (
    Baseline,
    all_rules,
    get_rule,
    load_baseline,
    load_project,
    render_json,
    render_text,
    run_rules,
    write_baseline,
)
from repro.analysis import rules as _rules  # noqa: F401  (registration)

DEFAULT_BASELINE = "analysis-baseline.json"


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant analyzer for the repro stack",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help=f"baseline file (default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings out as the new baseline and exit",
    )
    parser.add_argument(
        "--rules",
        metavar="NAME[,NAME...]",
        help="run only the named rules (default: all registered rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    options = _parser().parse_args(argv)

    if options.list_rules:
        for entry in all_rules():
            print(f"{entry.name}  [{entry.severity}]  {entry.summary}")
        return 0

    if options.rules:
        try:
            selected = [get_rule(name) for name in options.rules.split(",") if name]
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        selected = None

    paths = [Path(p) for p in options.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    project = load_project(paths)
    findings = run_rules(project, selected)

    baseline_path = _baseline_path(options)
    if options.write_baseline:
        target = baseline_path or Path(DEFAULT_BASELINE)
        count = write_baseline(target, findings)
        print(f"wrote {count} baseline entr(y/ies) to {target}")
        return 0

    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        baseline = Baseline(entries=[])

    active, suppressed, stale = baseline.split(findings)
    render = render_json if options.format == "json" else render_text
    print(render(active, suppressed, stale, len(project.files)))
    failing = [finding for finding in active if finding.severity == "error"]
    return 1 if failing else 0


def _baseline_path(options: argparse.Namespace) -> Path | None:
    if options.no_baseline:
        return None
    if options.baseline:
        return Path(options.baseline)
    default = Path(DEFAULT_BASELINE)
    return default if default.exists() else None


if __name__ == "__main__":
    raise SystemExit(main())
