"""Rule 2 — async purity.

``AsyncRepositoryService`` (``aservice.py``) is a thin async facade:
every blocking operation — sync service calls, sqlite, sockets, file
I/O, sleeps, executor shutdowns — must reach the event loop only
through executor submission (``self._read(lambda: ...)`` /
``self._write(lambda: ...)`` / ``loop.run_in_executor``).  A direct
blocking call inside an ``async def`` body stalls every coroutine on
the loop; this rule catches the pattern statically.

Callables *built* inside the body (lambdas, nested defs) are exempt:
they execute later on an executor thread, which is exactly the
sanctioned route.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    ParsedFile,
    Project,
    dotted_name,
    rule,
    walk_shallow,
)

_BLOCKING_EXACT = frozenset({"time.sleep"})
_BLOCKING_PREFIXES = ("sqlite3.", "socket.")
_SERVICE_PREFIXES = ("self.service.", "self._service.")

Found = Iterator[tuple[ParsedFile, int, str]]


@rule("async-purity")
def check(project: Project) -> Found:
    """async def bodies in aservice.py reach blocking work only through
    executor submission, never by calling it directly."""
    for parsed in project.named("aservice.py"):
        if parsed.tree is None:
            continue
        for func in ast.walk(parsed.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            yield from _blocking_calls(parsed, func)


def _blocking_calls(parsed: ParsedFile, func: ast.AsyncFunctionDef) -> Found:
    for node in walk_shallow(func):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        message = _diagnose(name, func.name)
        if message is not None:
            yield parsed, node.lineno, message


def _diagnose(name: str, where: str) -> str | None:
    if name in _BLOCKING_EXACT or name.startswith(_BLOCKING_PREFIXES):
        return (
            f"blocking call {name}() directly inside async def {where}; "
            "submit it to an executor instead"
        )
    if name == "open":
        return (
            f"blocking file I/O open() directly inside async def {where}; "
            "submit it to an executor instead"
        )
    if name.startswith(_SERVICE_PREFIXES):
        return (
            f"direct sync service call {name}() inside async def {where}; "
            "route it through self._read/self._write executor submission"
        )
    if name.endswith(".shutdown"):
        return (
            f"{name}() blocks until queued work drains; inside async def "
            f"{where} it stalls the event loop — run it in an executor"
        )
    return None
