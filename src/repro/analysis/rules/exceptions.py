"""Rule 3 — exception taxonomy.

Two halves:

* **Raise sites** in the wire layers (``server.py``, ``client.py``,
  ``backends/``) must raise the typed taxonomy — ``StorageError`` or a
  subclass — so the server can map classes to HTTP statuses and the
  client can re-raise the exact class in-process callers would see.
  Bare ``raise`` re-raises, raising a captured variable, ``SystemExit``
  (CLI mains), ``NotImplementedError`` (abstract seams), and local
  factory helpers annotated ``-> StorageError`` (``_wire_error``) are
  all fine.  The class set is parsed from the scanned ``errors.py``
  (``StorageError`` + descendants), so growing the taxonomy never
  requires touching this rule.
* **Broad handlers** everywhere: ``except Exception`` (or broader)
  must re-raise somewhere in its body or carry the repo's justified
  suppression form ``# noqa: BLE001 - <reason>`` on the except line.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import ParsedFile, Project, dotted_name, rule, walk_shallow

_RAISE_SCOPE_NAMES = frozenset({"server.py", "client.py"})
_STDLIB_OK = frozenset({"SystemExit", "NotImplementedError"})
#: Used when the scan does not include an errors.py defining StorageError
#: (fixture trees); the real tree always parses the live taxonomy.
_FALLBACK_TYPED = frozenset({"StorageError", "EntryNotFound", "DuplicateEntry"})
_BROAD_NAMES = frozenset({"Exception", "BaseException"})
_NOQA_RE = re.compile(r"#\s*noqa:\s*BLE001\s*-\s*\S")

Found = Iterator[tuple[ParsedFile, int, str]]


@rule("exception-taxonomy")
def check(project: Project) -> Found:
    """wire layers raise StorageError subclasses; broad excepts re-raise
    or carry a justified '# noqa: BLE001 - <reason>' comment."""
    typed = _typed_errors(project)
    for parsed in project.files:
        if parsed.tree is None:
            continue
        if _in_raise_scope(parsed):
            yield from _raise_sites(parsed, typed)
        yield from _broad_handlers(parsed)


def _in_raise_scope(parsed: ParsedFile) -> bool:
    return parsed.name in _RAISE_SCOPE_NAMES or "backends" in parsed.parts[:-1]


def _typed_errors(project: Project) -> frozenset[str]:
    """StorageError and its descendants, parsed from the scanned tree."""
    for parsed in project.named("errors.py"):
        if parsed.tree is None:
            continue
        bases: dict[str, list[str]] = {}
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ClassDef):
                bases[node.name] = [
                    base
                    for base in (dotted_name(b) for b in node.bases)
                    if base is not None
                ]
        if "StorageError" not in bases:
            continue
        typed = {"StorageError"}
        changed = True
        while changed:
            changed = False
            for name, parents in bases.items():
                if name not in typed and any(p.split(".")[-1] in typed for p in parents):
                    typed.add(name)
                    changed = True
        return frozenset(typed)
    return _FALLBACK_TYPED


def _error_factories(tree: ast.Module, typed: frozenset[str]) -> frozenset[str]:
    """Module-level helpers that demonstrably produce typed errors.

    Either the return annotation names a typed class (``_wire_error(...)
    -> StorageError``) or every ``return`` returns a typed construction.
    """
    factories: set[str] = set()
    for node in tree.body:
        if not isinstance(node, ast.FunctionDef):
            continue
        annotation = dotted_name(node.returns) if node.returns is not None else None
        if annotation is not None and annotation.split(".")[-1] in typed:
            factories.add(node.name)
            continue
        returns = [n for n in ast.walk(node) if isinstance(n, ast.Return)]
        if returns and all(_returns_typed(r, typed) for r in returns):
            factories.add(node.name)
    return frozenset(factories)


def _returns_typed(node: ast.Return, typed: frozenset[str]) -> bool:
    if not isinstance(node.value, ast.Call):
        return False
    name = dotted_name(node.value.func)
    return name is not None and name.split(".")[-1] in typed


def _raise_sites(parsed: ParsedFile, typed: frozenset[str]) -> Found:
    factories = _error_factories(parsed.tree, typed)
    for node in ast.walk(parsed.tree):
        if not isinstance(node, ast.Raise):
            continue
        exc = node.exc
        if exc is None:
            continue  # bare `raise` re-raises the active exception
        if isinstance(exc, ast.Name):
            # `raise error` re-raises a captured variable; an uncalled
            # CapitalizedClass must still be in the taxonomy.
            name = exc.id
            if name[:1].islower() or name in typed or name in _STDLIB_OK:
                continue
            yield parsed, node.lineno, _untyped(name)
            continue
        if isinstance(exc, ast.Call):
            name = dotted_name(exc.func)
            if name is None:
                yield (
                    parsed,
                    node.lineno,
                    "raised class cannot be statically resolved; raise a "
                    "named StorageError subclass (or baseline this site)",
                )
                continue
            leaf = name.split(".")[-1]
            if leaf in typed or leaf in _STDLIB_OK or name in factories:
                continue
            yield parsed, node.lineno, _untyped(name)
            continue
        yield (
            parsed,
            node.lineno,
            "raise of a non-name expression; raise a named StorageError "
            "subclass so the wire can transmit the class",
        )


def _untyped(name: str) -> str:
    return (
        f"raises {name}, which is not a StorageError subclass; wire "
        "layers must raise the typed taxonomy (see repro/core/errors.py)"
    )


def _broad_handlers(parsed: ParsedFile) -> Found:
    for node in ast.walk(parsed.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node.type):
            continue
        if _has_raise(node):
            continue
        if _NOQA_RE.search(parsed.line(node.lineno)):
            continue
        yield (
            parsed,
            node.lineno,
            "broad except neither re-raises nor carries the justified "
            "suppression form '# noqa: BLE001 - <reason>'",
        )


def _is_broad(node: ast.expr | None) -> bool:
    if node is None:
        return True  # bare `except:`
    if isinstance(node, ast.Tuple):
        return any(_is_broad(element) for element in node.elts)
    name = dotted_name(node)
    return name is not None and name.split(".")[-1] in _BROAD_NAMES


def _has_raise(handler: ast.ExceptHandler) -> bool:
    for statement in handler.body:
        if isinstance(statement, ast.Raise):
            return True
        for node in walk_shallow(statement):
            if isinstance(node, ast.Raise):
                return True
    return False
