"""Rule 5 — protocol/route drift.

``service.API_METHODS`` is the wire contract: the conformance suites
assume every name appears on the sync facade, the protocol class, the
async facade, and the HTTP client, and (where it crosses the wire) has
a dispatch route on the server.  A half-wired endpoint — added to the
service but not the client, or routed but with no handler — survives
unit tests and dies in production.  This rule cross-checks all five
layers from the AST alone.

The API-name → server-route mapping is declared in ``_ROUTE_OF`` below;
adding a name to ``API_METHODS`` without extending the mapping is
itself a finding, which is what forces the mapping to stay current.
Layers whose file is absent from the scan are skipped (fixture trees);
the committed CI invocation scans all of ``src/`` so every layer is
always checked there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.engine import ParsedFile, Project, dotted_name, rule

#: API method -> server route handler name (as it appears in
#: ``server._ROUTES`` and as a ``_handle_<name>`` method).  ``None``
#: marks client/service-local lifecycle methods with no wire route.
_ROUTE_OF: dict[str, str | None] = {
    "identifiers": "list_entries",
    "versions": "versions",
    "versions_many": "batch_versions",
    "has": "has",
    "entry_count": "counter",
    "get": "get_entry",
    "get_many": "batch_get",
    "add": "add",
    "add_version": "add_version",
    "replace_latest": "replace_latest",
    "add_many": "add",
    "query": "query",
    "execute_query": "query",
    "query_stats": "query_stats",
    "change_counter": "counter",
    "change_token": "counter",
    "cache_stats": "stats",
    "close": None,
}

#: The four API layers: (file the class lives in, class name).
_LAYERS = (
    ("service.py", "RepositoryAPI"),
    ("service.py", "RepositoryService"),
    ("aservice.py", "AsyncRepositoryService"),
    ("client.py", "HTTPBackend"),
)

Found = Iterator[tuple[ParsedFile, int, str]]


@dataclass
class _ClassInfo:
    parsed: ParsedFile
    lineno: int
    bases: list[str]
    methods: set[str] = field(default_factory=set)


@rule("protocol-drift")
def check(project: Project) -> Found:
    """every service.API_METHODS name exists on all four API layers and
    has a live dispatch route + handler in server.py."""
    methods = _api_methods(project)
    if methods is None:
        return
    api_names, api_file, api_line = methods
    classes = _collect_classes(project)
    for file_name, class_name in _LAYERS:
        if not project.named(file_name):
            continue  # fixture tree without this layer
        info = classes.get(class_name)
        if info is None:
            yield (
                api_file,
                api_line,
                f"class {class_name} (expected in {file_name}) was not "
                "found; the API layer itself has drifted",
            )
            continue
        available = _method_closure(class_name, classes)
        for name in api_names:
            if name not in available:
                yield (
                    info.parsed,
                    info.lineno,
                    f"API method {name!r} from service.API_METHODS is "
                    f"missing on {class_name}",
                )
    yield from _check_server(project, api_names, api_file, api_line)


def _api_methods(
    project: Project,
) -> tuple[list[str], ParsedFile, int] | None:
    for parsed in project.named("service.py"):
        if parsed.tree is None:
            continue
        for node in parsed.tree.body:
            target = _assign_target(node)
            if target != "API_METHODS":
                continue
            value = node.value
            if isinstance(value, (ast.Tuple, ast.List)):
                names = [
                    element.value
                    for element in value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ]
                return names, parsed, node.lineno
    return None


def _assign_target(node: ast.stmt) -> str | None:
    if isinstance(node, ast.Assign) and len(node.targets) == 1:
        target = node.targets[0]
        return target.id if isinstance(target, ast.Name) else None
    if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
        return node.target.id
    return None


def _collect_classes(project: Project) -> dict[str, _ClassInfo]:
    classes: dict[str, _ClassInfo] = {}
    for parsed in project.files:
        if parsed.tree is None:
            continue
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = _ClassInfo(
                parsed=parsed,
                lineno=node.lineno,
                bases=[
                    base.split(".")[-1]
                    for base in (dotted_name(b) for b in node.bases)
                    if base is not None
                ],
            )
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods.add(child.name)
            classes.setdefault(node.name, info)
    return classes


def _method_closure(class_name: str, classes: dict[str, _ClassInfo]) -> set[str]:
    """Own methods plus those inherited through scanned base classes."""
    available: set[str] = set()
    pending = [class_name]
    visited: set[str] = set()
    while pending:
        current = pending.pop()
        if current in visited:
            continue
        visited.add(current)
        info = classes.get(current)
        if info is None:
            continue
        available.update(info.methods)
        pending.extend(info.bases)
    return available


def _check_server(
    project: Project,
    api_names: list[str],
    api_file: ParsedFile,
    api_line: int,
) -> Found:
    servers = [p for p in project.named("server.py") if p.tree is not None]
    if not servers:
        return
    server = servers[0]
    routed = _route_handlers(server)
    handlers = _handler_methods(server)
    for name in api_names:
        if name not in _ROUTE_OF:
            yield (
                api_file,
                api_line,
                f"API method {name!r} has no declared route mapping; add "
                "it to _ROUTE_OF in repro/analysis/rules/protocol.py and "
                "wire server._ROUTES",
            )
            continue
        target = _ROUTE_OF[name]
        if target is None:
            continue
        if target not in routed:
            yield (
                server,
                1,
                f"route {target!r} (serving API method {name!r}) is "
                "missing from server._ROUTES",
            )
        if f"_handle_{target}" not in handlers:
            yield (
                server,
                1,
                f"handler _handle_{target} (serving API method {name!r}) "
                "is missing from the server request handler",
            )


def _route_handlers(server: ParsedFile) -> set[str]:
    """Handler names appearing as the second element of _ROUTES pairs."""
    routed: set[str] = set()
    for node in server.tree.body:
        if _assign_target(node) != "_ROUTES":
            continue
        if not isinstance(node.value, ast.Dict):
            continue
        for value in node.value.values:
            if not isinstance(value, (ast.List, ast.Tuple)):
                continue
            for pair in value.elts:
                if isinstance(pair, ast.Tuple) and pair.elts:
                    last = pair.elts[-1]
                    if isinstance(last, ast.Constant) and isinstance(last.value, str):
                        routed.add(last.value)
    return routed


def _handler_methods(server: ParsedFile) -> set[str]:
    methods: set[str] = set()
    for node in ast.walk(server.tree):
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                if isinstance(child, ast.FunctionDef) and child.name.startswith(
                    "_handle_"
                ):
                    methods.add(child.name)
    return methods
