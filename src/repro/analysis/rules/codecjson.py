"""Rule 4 — codec discipline.

``repro.repository.codec`` owns the canonical entry wire form (key
order, version strings, digest input); its memo layers key on the exact
encoded bytes.  A stray ``json.dumps`` of an entry elsewhere silently
forks the canonical form — digests stop matching and memos stop
deduplicating.  So inside ``repro/repository/``, the ``json`` module is
callable only from the declared codec/wire modules; everything else
goes through ``encode_entry``/``decode_entry``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ParsedFile, Project, dotted_name, rule

#: Modules allowed to touch ``json`` directly: the codec itself plus the
#: wire and snapshot layers that serialise non-entry payloads (request
#: envelopes, index snapshots, render snapshots).
_ALLOWED_FILES = frozenset(
    {"codec.py", "server.py", "client.py", "search.py", "render_cache.py"}
)
_JSON_CALLS = frozenset({"json.dumps", "json.loads", "json.dump", "json.load"})

Found = Iterator[tuple[ParsedFile, int, str]]


@rule("codec-discipline")
def check(project: Project) -> Found:
    """inside repro/repository/, json encode/decode happens only in
    codec.py and the declared wire modules."""
    for parsed in project.files:
        if "repository" not in parsed.parts[:-1]:
            continue
        if parsed.name in _ALLOWED_FILES or parsed.tree is None:
            continue
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "json":
                yield (
                    parsed,
                    node.lineno,
                    "from-import of json outside the codec/wire modules; "
                    "use repro.repository.codec for entry payloads",
                )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _JSON_CALLS:
                    yield (
                        parsed,
                        node.lineno,
                        f"{name}() outside the codec/wire modules; entry "
                        "payloads must round-trip through "
                        "repro.repository.codec to keep the canonical "
                        "form (and its digests/memos) unforked",
                    )
