"""Rule 6 — harness determinism.

The corpus factory's contract (PR 7) is byte-identical entry streams
for a given seed, across processes and random access by index; the
soak runner's red-run replay story depends on the same property.  One
unseeded ``random.choice`` or wall-clock-derived seed silently breaks
both.  Inside ``repro/harness/``, all randomness must flow through an
explicitly seeded ``random.Random`` instance, durations through
``time.monotonic``, and nothing through ``os.urandom``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ParsedFile, Project, dotted_name, rule

Found = Iterator[tuple[ParsedFile, int, str]]


@rule("harness-determinism")
def check(project: Project) -> Found:
    """repro/harness/ uses only explicitly seeded randomness: no
    module-level random.*, unseeded Random(), time.time(), os.urandom."""
    for parsed in project.files:
        if "harness" not in parsed.parts[:-1]:
            continue
        if parsed.tree is None:
            continue
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func) or ""
            message = _diagnose(name, node)
            if message is not None:
                yield parsed, node.lineno, message


def _diagnose(name: str, node: ast.Call) -> str | None:
    if name == "random.Random":
        if not node.args and not node.keywords:
            return (
                "random.Random() without a seed draws from the OS; pass "
                "an explicit seed so the harness stream is reproducible"
            )
        return None
    if name.startswith("random."):
        return (
            f"module-level {name}() shares unseeded global state; use an "
            "explicitly seeded random.Random instance"
        )
    if name == "os.urandom":
        return (
            "os.urandom() is nondeterministic; derive bytes from the "
            "seeded rng instead"
        )
    if name == "time.time":
        return (
            "time.time() in harness code: wall clocks make seeds and "
            "schedules unreproducible — use time.monotonic for durations "
            "and explicit seeds for rngs"
        )
    return None
