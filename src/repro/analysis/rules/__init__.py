"""Rule modules for the repro static analyzer.

Importing this package registers every built-in rule with the engine
registry (each module's ``@rule`` decorator runs at import time).
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    asyncpurity,
    codecjson,
    determinism,
    exceptions,
    locks,
    protocol,
    retries,
    txn,
)

__all__ = [
    "asyncpurity",
    "codecjson",
    "determinism",
    "exceptions",
    "locks",
    "protocol",
    "retries",
    "txn",
]
