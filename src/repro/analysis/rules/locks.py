"""Rule 1 — lock discipline.

Two invariants from the concurrency layer:

* raw ``threading.Lock``/``RLock`` objects are constructed in
  ``concurrency.py`` only (everything else uses ``concurrency.Mutex``
  or ``ReadWriteLock``), so there is exactly one module to audit when
  reasoning about lock ordering;
* in ``render_cache.py``/``service.py``, a plain mutex (``with
  self._mutex:``-style bare attribute) is never held across a
  ``self.service.*``/``self.backend.*`` call — the PR-4 eviction-race
  invariant ("capture the clock under the lock, call outside").
  ``ReadWriteLock``'s ``read_locked()``/``write_locked()`` context
  managers are *calls*, not bare attributes, and are deliberately not
  matched: the service design does hold the RW lock across backend
  writes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    ParsedFile,
    Project,
    dotted_name,
    rule,
    walk_shallow,
)

_LOCK_CONSTRUCTORS = frozenset({"threading.Lock", "threading.RLock"})
_LOCK_NAMES = frozenset({"Lock", "RLock"})
_GUARDED_FILES = frozenset({"render_cache.py", "service.py"})
_SERVICE_ROOTS = ("self.service.", "self.backend.", "self._service.", "self._backend.")

Found = Iterator[tuple[ParsedFile, int, str]]


@rule("lock-discipline")
def check(project: Project) -> Found:
    """threading locks live in concurrency.py; mutexes are never held
    across service/backend calls in render_cache.py/service.py."""
    for parsed in project.files:
        if parsed.tree is None:
            continue
        if parsed.name != "concurrency.py":
            yield from _constructions(parsed)
        if parsed.name in _GUARDED_FILES:
            yield from _held_across_calls(parsed)


def _threading_aliases(tree: ast.Module) -> frozenset[str]:
    """Local names bound to threading.Lock/RLock via from-imports."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "threading":
            for name in node.names:
                if name.name in _LOCK_NAMES:
                    aliases.add(name.asname or name.name)
    return frozenset(aliases)


def _constructions(parsed: ParsedFile) -> Found:
    aliases = _threading_aliases(parsed.tree)
    for node in ast.walk(parsed.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name in _LOCK_CONSTRUCTORS or name in aliases:
            yield (
                parsed,
                node.lineno,
                f"{name}() constructed outside concurrency.py; use "
                "repro.repository.concurrency.Mutex so every lock in the "
                "stack is declared in one module",
            )


def _is_plain_mutex(expr: ast.AST) -> bool:
    """``self._mutex``-style bare attribute whose name says lock/mutex."""
    if not isinstance(expr, ast.Attribute):
        return False
    name = dotted_name(expr)
    if name is None or not name.startswith("self."):
        return False
    attr = expr.attr.lower()
    return "lock" in attr or "mutex" in attr


def _held_across_calls(parsed: ParsedFile) -> Found:
    for node in ast.walk(parsed.tree):
        if not isinstance(node, ast.With):
            continue
        if not any(_is_plain_mutex(item.context_expr) for item in node.items):
            continue
        # Deferred callables built under the lock run after release:
        # walk_shallow skips nested def/lambda bodies.
        for statement in node.body:
            for inner in _statement_nodes(statement):
                if not isinstance(inner, ast.Call):
                    continue
                name = dotted_name(inner.func) or ""
                if name.startswith(_SERVICE_ROOTS):
                    yield (
                        parsed,
                        inner.lineno,
                        f"{name}() called while a mutex is held; capture "
                        "state under the lock and make the call after "
                        "releasing it (PR-4 eviction-race invariant)",
                    )


def _statement_nodes(statement: ast.stmt) -> Iterator[ast.AST]:
    yield statement
    yield from walk_shallow(statement)
