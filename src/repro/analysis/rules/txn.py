"""Rule 8 — transaction (group-commit) discipline.

PR 10 added the group-commit seam: ``StorageBackend.write_group()`` is
a no-op default, ``SQLiteBackend`` overrides it with one real
transaction, ``FileBackend`` with fsync-batching — and the conformance
suite holds every backend to the *same* observable semantics (one
logical change per group, per-entry events).  That uniformity is easy
to erode: the next backend grows a ``begin_group()`` of its own, or a
durable layer silently misses the override and quietly commits N times
per "group".  Two invariants:

* **the seam is declared on the base.**  A group-commit method
  (``write_group`` / ``begin_group`` / ``commit_group`` /
  ``abort_group``) defined on a concrete backend under ``backends/``
  must also exist on ``StorageBackend`` in ``base.py`` — otherwise the
  API exists on one layer only and nothing (conformance suite, facade,
  coalescer) can rely on it;
* **the durable layers stay in lockstep.**  If one of the persistent
  backends (``sqlite.py``, ``file.py``) overrides ``write_group`` and
  the other does not, the one without it still pays one commit unit
  per write inside a "group" — exactly one finding, anchored at the
  lagging backend class.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ParsedFile, Project, rule

#: The group-commit API surface; any of these names on a backend class
#: marks that layer as speaking the group protocol.
_GROUP_API = frozenset({
    "write_group", "begin_group", "commit_group", "abort_group",
})

#: The persistent layers whose commit units cost real I/O — the ones
#: group commit exists for, and the ones that must not drift apart.
_DURABLE_LAYERS = ("sqlite.py", "file.py")

_BASE_FILE = "base.py"

Found = Iterator[tuple[ParsedFile, int, str]]


@rule("txn-discipline")
def check(project: Project) -> Found:
    """The group-commit seam is declared on StorageBackend and the
    durable backends (sqlite/file) both override write_group."""
    backends = project.under("backends")
    if not backends:
        return
    base_seen = False
    base_methods: set[str] = set()
    for parsed in backends:
        if parsed.name == _BASE_FILE:
            base_seen = True
            base_methods |= _group_methods(parsed).keys()
    for parsed in backends:
        if parsed.name == _BASE_FILE or parsed.tree is None:
            continue
        for name, line in sorted(_group_methods(parsed).items()):
            if base_seen and name not in base_methods:
                yield (
                    parsed,
                    line,
                    f"{name}() defined on a concrete backend but not "
                    "declared on StorageBackend in base.py; hoist the "
                    "group-commit seam so every layer (and the "
                    "conformance suite) shares one API",
                )
    yield from _durable_parity(project)


def _durable_parity(project: Project) -> Found:
    layers: dict[str, ParsedFile] = {}
    for parsed in project.under("backends"):
        if parsed.name in _DURABLE_LAYERS and parsed.name not in layers:
            layers[parsed.name] = parsed
    if len(layers) < 2:
        return  # nothing to compare (partial tree under scan)
    overriding = {name for name, parsed in layers.items()
                  if "write_group" in _group_methods(parsed)}
    if not overriding or overriding == set(layers):
        return
    for name in sorted(set(layers) - overriding):
        parsed = layers[name]
        yield (
            parsed,
            _class_line(parsed),
            f"{name} has no write_group() override while "
            f"{', '.join(sorted(overriding))} batches commits; this "
            "backend pays one commit unit per write inside a group — "
            "add the override (one counter window, one flush) to keep "
            "the durable layers in lockstep",
        )


def _group_methods(parsed: ParsedFile) -> dict[str, int]:
    """Group-API method names defined on any class in ``parsed``."""
    methods: dict[str, int] = {}
    if parsed.tree is None:
        return methods
    for node in ast.walk(parsed.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for statement in node.body:
            if (isinstance(statement,
                           (ast.FunctionDef, ast.AsyncFunctionDef))
                    and statement.name in _GROUP_API):
                methods.setdefault(statement.name, statement.lineno)
    return methods


def _class_line(parsed: ParsedFile) -> int:
    if parsed.tree is not None:
        for node in ast.walk(parsed.tree):
            if isinstance(node, ast.ClassDef):
                return node.lineno
    return 1
