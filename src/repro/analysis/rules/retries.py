"""Rule 7 — retry discipline.

PR-9 gave the stack one sanctioned retry mechanism
(:class:`repro.repository.resilience.RetryPolicy`: capped attempts,
decorrelated jitter, a retry budget, deadline awareness).  Hand-rolled
retry loops bypass every one of those safeguards — they synchronise
into retry storms, multiply load during outages, and ignore deadlines —
so this rule flags the two shapes they take:

* a ``time.sleep`` call directly inside a ``while``/``for`` body (the
  backoff-by-hand smell; sleeping off-loop belongs to the policy's
  injectable ``sleep``);
* a ``for ... in range(n)`` loop whose body is a ``try`` with an
  exception handler that swallows the error and goes around again
  (``continue``/``pass``) — the classic ad-hoc attempt counter.

``resilience.py`` itself is exempt: it *implements* the sanctioned
sleep.  Nested ``def``/``lambda`` bodies are skipped (an injectable
``sleep=time.sleep`` default or a deferred callable is not a loop
sleeping inline).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    ParsedFile,
    Project,
    dotted_name,
    rule,
)

_EXEMPT_FILES = frozenset({"resilience.py"})

Found = Iterator[tuple[ParsedFile, int, str]]


@rule("retry-discipline")
def check(project: Project) -> Found:
    """Hand-rolled retry loops (sleep-in-loop, range(n) attempt
    counters) are flagged; retries go through resilience.RetryPolicy."""
    for parsed in project.files:
        if parsed.tree is None or parsed.name in _EXEMPT_FILES:
            continue
        aliases = _sleep_aliases(parsed.tree)
        for node in ast.walk(parsed.tree):
            if isinstance(node, (ast.While, ast.For)):
                yield from _sleeps_in_loop(parsed, node, aliases)
            if isinstance(node, ast.For):
                yield from _adhoc_attempt_loop(parsed, node)


def _sleep_aliases(tree: ast.Module) -> frozenset[str]:
    """Local names bound to time.sleep via from-imports."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for name in node.names:
                if name.name == "sleep":
                    aliases.add(name.asname or name.name)
    return frozenset(aliases)


def _sleeps_in_loop(
    parsed: ParsedFile,
    loop: ast.While | ast.For,
    aliases: frozenset[str],
) -> Found:
    for statement in loop.body + loop.orelse:
        for inner in _loop_body_nodes(statement):
            if not isinstance(inner, ast.Call):
                continue
            name = dotted_name(inner.func) or ""
            if name == "time.sleep" or name in aliases:
                yield (
                    parsed,
                    inner.lineno,
                    "time.sleep inside a loop is a hand-rolled retry/"
                    "poll; use resilience.RetryPolicy (jitter, budget, "
                    "deadline) or an injectable sleep",
                )


def _adhoc_attempt_loop(parsed: ParsedFile, loop: ast.For) -> Found:
    if not _is_range_call(loop.iter):
        return
    for statement in loop.body:
        if not isinstance(statement, ast.Try):
            continue
        for handler in statement.handlers:
            if _swallows_and_retries(handler):
                yield (
                    parsed,
                    loop.lineno,
                    "range(n) attempt loop swallowing errors is an "
                    "ad-hoc retry; use resilience.RetryPolicy so "
                    "attempts share the jitter/budget/deadline rules",
                )
                return


def _is_range_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and dotted_name(expr.func) == "range"
    )


def _swallows_and_retries(handler: ast.ExceptHandler) -> bool:
    """An except body that ends the iteration without re-raising."""
    if not handler.body:
        return False
    last = handler.body[-1]
    if isinstance(last, (ast.Continue, ast.Pass)):
        return True
    return False


def _loop_body_nodes(statement: ast.stmt) -> Iterator[ast.AST]:
    """The statement and its descendants, stopping at nested loops and
    nested ``def``/``lambda`` bodies (each nested loop reports its own
    sleeps; deferred callables do not sleep inline)."""
    yield statement
    if isinstance(
        statement,
        (ast.While, ast.For, ast.FunctionDef, ast.AsyncFunctionDef),
    ):
        return
    stack = list(ast.iter_child_nodes(statement))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node,
            (
                ast.While,
                ast.For,
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.Lambda,
            ),
        ):
            stack.extend(ast.iter_child_nodes(node))
