"""Unit tests for trees, graphs and metamodels."""

from __future__ import annotations

import pytest

from repro.core.errors import MetamodelError
from repro.models.graphs import Graph, GraphEdge, GraphNode, GraphSpace
from repro.models.metamodel import (
    AttributeDef,
    ClassDef,
    Metamodel,
    ReferenceDef,
)
from repro.models.space import FiniteSpace
from repro.models.trees import Node, TreeSpace


class TestNode:
    def make(self) -> Node:
        return Node("root", {"id": "r"}, children=[
            Node("child", text="one"),
            Node("child", text="two"),
            Node("other"),
        ])

    def test_immutability(self):
        node = self.make()
        with pytest.raises(AttributeError):
            node.label = "x"  # type: ignore[misc]
        node.attributes["id"] = "changed"
        assert node.attributes == {"id": "r"}  # copy returned

    def test_queries(self):
        node = self.make()
        assert node.find("child").text == "one"
        assert node.find("missing") is None
        assert len(node.find_all("child")) == 2
        assert node.size() == 4
        assert node.depth() == 2
        assert [n.label for n in node.walk()] == [
            "root", "child", "child", "other"]

    def test_pure_updates(self):
        node = self.make()
        grown = node.append_child(Node("new"))
        assert grown.size() == 5
        assert node.size() == 4
        replaced = node.replace_child(0, Node("swapped"))
        assert replaced.children[0].label == "swapped"
        removed = node.remove_child(2)
        assert removed.size() == 3

    def test_with_helpers(self):
        node = Node("a")
        assert node.with_text("t").text == "t"
        assert node.with_attribute("k", "v").attributes == {"k": "v"}

    def test_map_nodes(self):
        upper = self.make().map_nodes(
            lambda n: Node(n.label.upper(), n.attributes, n.text,
                           n.children))
        assert upper.label == "ROOT"
        assert upper.children[0].label == "CHILD"

    def test_value_semantics(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())
        assert self.make() != Node("root")

    def test_pretty_renders_nested(self):
        text = self.make().pretty()
        assert "<root" in text and "  <child>" in text


class TestTreeSpace:
    def test_membership_and_sampling(self, rng):
        space = TreeSpace(["a", "b"], max_depth=3)
        assert space.contains(Node("a", children=[Node("b")]))
        assert not space.contains(Node("z"))
        assert not space.contains("junk")
        for _ in range(20):
            assert space.contains(space.sample(rng))

    def test_depth_bound(self):
        space = TreeSpace(["a"], max_depth=1)
        assert not space.contains(Node("a", children=[Node("a")]))


class TestGraph:
    def make(self) -> Graph:
        return Graph(
            [GraphNode.make("c1", "Class", {"name": "A"}),
             GraphNode.make("a1", "Attribute", {"name": "x"})],
            [GraphEdge("c1", "attrs", "a1")])

    def test_referential_integrity(self):
        with pytest.raises(MetamodelError, match="unknown source"):
            Graph([], [GraphEdge("x", "e", "y")])

    def test_duplicate_node_ids(self):
        node = GraphNode.make("n", "T")
        with pytest.raises(MetamodelError, match="duplicate"):
            Graph([node, node])

    def test_queries(self):
        graph = self.make()
        assert graph.node("c1").attribute("name") == "A"
        assert graph.node("c1").attribute("missing", 0) == 0
        assert [n.node_id for n in graph.nodes("Class")] == ["c1"]
        assert graph.targets("c1", "attrs")[0].node_id == "a1"
        assert graph.in_edges("a1")[0].source == "c1"

    def test_remove_node_drops_incident_edges(self):
        graph = self.make().remove_node("a1")
        assert not graph.edges()
        assert not graph.has_node("a1")

    def test_replace_node(self):
        graph = self.make().replace_node(
            GraphNode.make("c1", "Class", {"name": "B"}))
        assert graph.node("c1").attribute("name") == "B"

    def test_value_semantics(self):
        assert self.make() == self.make()
        assert hash(self.make()) == hash(self.make())

    def test_node_with_attribute(self):
        node = GraphNode.make("n", "T", {"a": 1})
        assert node.with_attribute("a", 2).attribute("a") == 2
        assert node.attribute("a") == 1


class TestMetamodel:
    def make(self) -> Metamodel:
        return Metamodel("MM", [
            ClassDef("Class",
                     attributes=[AttributeDef("name",
                                              FiniteSpace(["A", "B"]))],
                     references=[ReferenceDef("attrs", "Attribute",
                                              lower=1, upper=2)]),
            ClassDef("Attribute",
                     attributes=[AttributeDef("name",
                                              FiniteSpace(["x"]))]),
        ])

    def conforming(self) -> Graph:
        return Graph(
            [GraphNode.make("c", "Class", {"name": "A"}),
             GraphNode.make("a", "Attribute", {"name": "x"})],
            [GraphEdge("c", "attrs", "a")])

    def test_conforming_graph(self):
        assert self.make().conforms(self.conforming())

    def test_unknown_type(self):
        graph = Graph([GraphNode.make("n", "Mystery")])
        problems = self.make().check(graph)
        assert any("unknown type" in p for p in problems)

    def test_missing_attribute(self):
        graph = Graph(
            [GraphNode.make("c", "Class"),
             GraphNode.make("a", "Attribute", {"name": "x"})],
            [GraphEdge("c", "attrs", "a")])
        problems = self.make().check(graph)
        assert any("missing attribute" in p for p in problems)

    def test_multiplicity_violation(self):
        graph = Graph([GraphNode.make("c", "Class", {"name": "A"})])
        problems = self.make().check(graph)
        assert any("multiplicity" in p for p in problems)

    def test_undeclared_edge_label(self):
        graph = self.conforming().add_edge(GraphEdge("c", "mystery", "a"))
        problems = self.make().check(graph)
        assert any("undeclared edge" in p for p in problems)

    def test_bad_reference_target_in_definition(self):
        with pytest.raises(MetamodelError, match="unknown target"):
            Metamodel("Bad", [ClassDef(
                "C", references=[ReferenceDef("r", "Nowhere")])])

    def test_graph_space(self, rng):
        metamodel = self.make()
        space = GraphSpace(metamodel, sampler=lambda rng: self.conforming())
        assert space.contains(self.conforming())
        assert not space.contains(Graph([GraphNode.make("n", "Mystery")]))
        assert space.contains(space.sample(rng))
