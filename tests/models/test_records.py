"""Unit tests for record models (repro.models.records)."""

from __future__ import annotations

import pytest

from repro.core.errors import MetamodelError, ModelSpaceError
from repro.models.records import FieldDef, Record, RecordSetSpace, RecordType
from repro.models.space import FiniteSpace, IntRangeSpace


def person_type() -> RecordType:
    return RecordType("Person", [
        FieldDef("name", FiniteSpace(["ann", "bob"])),
        FieldDef("age", IntRangeSpace(0, 120)),
    ])


class TestRecordType:
    def test_make_and_access(self):
        person = person_type().make(name="ann", age=30)
        assert person.name == "ann"
        assert person["age"] == 30
        assert person.as_dict() == {"name": "ann", "age": 30}
        assert person.as_tuple() == ("ann", 30)

    def test_make_validates_field_spaces(self):
        with pytest.raises(MetamodelError, match="age"):
            person_type().make(name="ann", age=999)

    def test_missing_and_extra_fields(self):
        with pytest.raises(MetamodelError, match="missing"):
            Record(person_type(), {"name": "ann"})
        with pytest.raises(MetamodelError, match="unexpected"):
            Record(person_type(), {"name": "ann", "age": 1, "x": 2})

    def test_duplicate_field_names_rejected(self):
        with pytest.raises(MetamodelError, match="duplicate"):
            RecordType("Bad", [FieldDef("a", IntRangeSpace(0, 1)),
                               FieldDef("a", IntRangeSpace(0, 1))])

    def test_no_fields_rejected(self):
        with pytest.raises(MetamodelError):
            RecordType("Empty", [])

    def test_contains(self):
        rtype = person_type()
        assert rtype.contains(rtype.make(name="bob", age=1))
        assert not rtype.contains("not a record")

    def test_sample_conforms(self, rng):
        rtype = person_type()
        assert rtype.contains(rtype.sample(rng))


class TestRecordValueSemantics:
    def test_equality_and_hash(self):
        rtype = person_type()
        first = rtype.make(name="ann", age=5)
        second = rtype.make(name="ann", age=5)
        assert first == second
        assert hash(first) == hash(second)
        assert first != rtype.make(name="ann", age=6)

    def test_immutability(self):
        person = person_type().make(name="ann", age=5)
        with pytest.raises(AttributeError):
            person.age = 6  # type: ignore[misc]

    def test_with_field(self):
        person = person_type().make(name="ann", age=5)
        older = person.with_field("age", 6)
        assert older.age == 6
        assert person.age == 5  # original untouched

    def test_with_field_unknown(self):
        with pytest.raises(MetamodelError):
            person_type().make(name="ann", age=5).with_field("x", 1)

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            person_type().make(name="ann", age=5).height

    def test_repr_shows_fields(self):
        assert "name='ann'" in repr(person_type().make(name="ann", age=5))


class TestRecordSpace:
    def test_single_record_space(self, rng):
        space = person_type().space()
        member = person_type().make(name="ann", age=5)
        assert space.contains(member)
        assert not space.contains("junk")
        assert space.contains(space.sample(rng))

    def test_enumeration_when_finite(self):
        rtype = RecordType("Tiny", [
            FieldDef("a", IntRangeSpace(0, 1)),
            FieldDef("b", FiniteSpace("xy")),
        ])
        members = list(rtype.space().enumerate_members())
        assert len(members) == 4

    def test_validate_explains(self):
        space = person_type().space()
        with pytest.raises(ModelSpaceError):
            space.validate(42)


class TestRecordSetSpace:
    def test_membership(self, rng):
        space = person_type().set_space(max_size=4)
        model = frozenset({person_type().make(name="ann", age=1)})
        assert space.contains(model)
        assert space.contains(frozenset())
        assert not space.contains({person_type().make(name="ann", age=1)})
        assert space.contains(space.sample(rng))

    def test_membership_ignores_size_bounds(self):
        """Bounds steer sampling only; big models are still members."""
        space = person_type().set_space(max_size=1)
        rtype = person_type()
        big = frozenset({rtype.make(name="ann", age=age)
                         for age in range(10)})
        assert space.contains(big)

    def test_validate_names_bad_element(self):
        space = person_type().set_space()
        with pytest.raises(ModelSpaceError):
            space.validate(frozenset({"junk"}))

    def test_empty_helper(self):
        assert person_type().set_space().empty() == frozenset()

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            RecordSetSpace(person_type(), min_size=3, max_size=1)
