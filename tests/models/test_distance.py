"""Metric-law property tests for model distances (repro.models.distance)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.distance import (
    mapping_distance,
    record_distance,
    sequence_edit_distance,
    set_distance,
    tree_distance,
)
from repro.models.records import FieldDef, RecordType
from repro.models.space import IntRangeSpace
from repro.models.trees import Node

short_lists = st.lists(st.integers(0, 3), max_size=6)
small_sets = st.frozensets(st.integers(0, 6), max_size=6)
small_maps = st.dictionaries(st.integers(0, 4), st.integers(0, 3),
                             max_size=5)


class TestSequenceEditDistance:
    def test_known_values(self):
        assert sequence_edit_distance((), ()) == 0
        assert sequence_edit_distance((1, 2, 3), (1, 2, 3)) == 0
        assert sequence_edit_distance((1, 2, 3), (1, 3)) == 1
        assert sequence_edit_distance("kitten", "sitting") == 3

    @given(short_lists, short_lists)
    @settings(max_examples=150, deadline=None)
    def test_symmetry(self, a, b):
        assert sequence_edit_distance(a, b) == sequence_edit_distance(b, a)

    @given(short_lists)
    @settings(max_examples=80, deadline=None)
    def test_identity(self, a):
        assert sequence_edit_distance(a, a) == 0

    @given(short_lists, short_lists, short_lists)
    @settings(max_examples=150, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert sequence_edit_distance(a, c) <= \
            sequence_edit_distance(a, b) + sequence_edit_distance(b, c)


class TestSetDistance:
    def test_known_values(self):
        assert set_distance(frozenset(), frozenset()) == 0
        assert set_distance({1, 2}, {2, 3}) == 2

    @given(small_sets, small_sets, small_sets)
    @settings(max_examples=150, deadline=None)
    def test_metric_laws(self, a, b, c):
        assert set_distance(a, a) == 0
        assert set_distance(a, b) == set_distance(b, a)
        assert set_distance(a, c) <= set_distance(a, b) + set_distance(b, c)


class TestRecordDistance:
    TYPE = RecordType("T", [FieldDef("a", IntRangeSpace(0, 9)),
                            FieldDef("b", IntRangeSpace(0, 9))])

    def test_field_count(self):
        first = self.TYPE.make(a=1, b=2)
        assert record_distance(first, self.TYPE.make(a=1, b=2)) == 0
        assert record_distance(first, self.TYPE.make(a=1, b=3)) == 1
        assert record_distance(first, self.TYPE.make(a=0, b=3)) == 2

    def test_cross_type_is_far(self):
        other = RecordType("U", [FieldDef("a", IntRangeSpace(0, 9))])
        distance = record_distance(self.TYPE.make(a=1, b=2),
                                   other.make(a=1))
        assert distance > 2

    def test_type_error(self):
        with pytest.raises(TypeError):
            record_distance(1, 2)


class TestMappingDistance:
    def test_known_values(self):
        assert mapping_distance({}, {}) == 0
        assert mapping_distance({1: "a"}, {1: "b"}) == 1
        assert mapping_distance({1: "a"}, {2: "a"}) == 2

    @given(small_maps, small_maps, small_maps)
    @settings(max_examples=150, deadline=None)
    def test_metric_laws(self, a, b, c):
        assert mapping_distance(a, a) == 0
        assert mapping_distance(a, b) == mapping_distance(b, a)
        assert mapping_distance(a, c) <= \
            mapping_distance(a, b) + mapping_distance(b, c)


def small_trees(depth: int = 2):
    labels = st.sampled_from(["a", "b"])
    if depth == 0:
        return st.builds(Node, labels)
    return st.builds(
        lambda label, children: Node(label, children=children),
        labels, st.lists(small_trees(depth - 1), max_size=2))


class TestTreeDistance:
    def test_known_values(self):
        assert tree_distance(Node("a"), Node("a")) == 0
        assert tree_distance(Node("a"), Node("b")) == 1
        assert tree_distance(None, Node("a", children=[Node("b")])) == 2

    def test_surplus_children_cost_their_size(self):
        big = Node("a", children=[Node("b", children=[Node("c")])])
        assert tree_distance(Node("a"), big) == 2

    @given(small_trees(), small_trees())
    @settings(max_examples=100, deadline=None)
    def test_symmetry_and_identity(self, first, second):
        assert tree_distance(first, first) == 0
        assert tree_distance(first, second) == tree_distance(second, first)

    def test_type_error(self):
        with pytest.raises(TypeError):
            tree_distance("x", Node("a"))
