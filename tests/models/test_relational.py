"""Unit tests for the relational substrate (repro.models.relational)."""

from __future__ import annotations

import pytest

from repro.core.errors import MetamodelError
from repro.models.relational import (
    Attribute,
    Database,
    DatabaseSpace,
    Relation,
    RelationSchema,
    RelationSpace,
    difference,
    natural_join,
    project,
    rename,
    select,
    union,
)
from repro.models.space import FiniteSpace, IntRangeSpace

IDS = IntRangeSpace(1, 9, name="ids")
NAMES = FiniteSpace(["ann", "bob", "cyd"], name="names")
CITIES = FiniteSpace(["rome", "banff"], name="cities")


def emp_schema() -> RelationSchema:
    return RelationSchema("Emp", [
        Attribute("id", IDS), Attribute("name", NAMES),
        Attribute("city", CITIES)], key=["id"])


def emp() -> Relation:
    return Relation(emp_schema(), {
        (1, "ann", "rome"), (2, "bob", "banff"), (3, "cyd", "rome")})


class TestRelationSchema:
    def test_index_and_key(self):
        schema = emp_schema()
        assert schema.index_of("name") == 1
        assert schema.key_of((1, "ann", "rome")) == (1,)

    def test_unknown_attribute(self):
        with pytest.raises(MetamodelError):
            emp_schema().index_of("salary")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(MetamodelError):
            RelationSchema("Bad", [Attribute("a", IDS),
                                   Attribute("a", IDS)])

    def test_key_must_name_attributes(self):
        with pytest.raises(MetamodelError):
            RelationSchema("Bad", [Attribute("a", IDS)], key=["z"])

    def test_validate_row(self):
        schema = emp_schema()
        schema.validate_row((1, "ann", "rome"))
        with pytest.raises(MetamodelError):
            schema.validate_row((1, "ann"))
        with pytest.raises(MetamodelError):
            schema.validate_row((1, "nobody", "rome"))


class TestRelation:
    def test_key_violation_detected(self):
        with pytest.raises(MetamodelError, match="key violation"):
            Relation(emp_schema(), {(1, "ann", "rome"),
                                    (1, "bob", "banff")})

    def test_insert_delete_pure(self):
        relation = emp()
        grown = relation.insert((4, "ann", "banff"))
        assert len(grown) == 4
        assert len(relation) == 3
        shrunk = grown.delete((4, "ann", "banff"))
        assert shrunk == relation

    def test_column(self):
        assert emp().column("city") == frozenset({"rome", "banff"})

    def test_rows_as_dicts_sorted(self):
        rows = emp().rows_as_dicts()
        assert rows[0] == {"id": 1, "name": "ann", "city": "rome"}

    def test_equality_by_value(self):
        assert emp() == emp()
        assert hash(emp()) == hash(emp())


class TestAlgebra:
    def test_project(self):
        view = project(emp(), ["id", "name"], key=["id"])
        assert view.schema.attribute_names == ["id", "name"]
        assert (1, "ann") in view.rows

    def test_select(self):
        romans = select(emp(), lambda row: row["city"] == "rome")
        assert len(romans) == 2

    def test_natural_join(self):
        dept_schema = RelationSchema("Dept", [
            Attribute("city", CITIES), Attribute("id2", IDS)])
        dept = Relation(dept_schema, {("rome", 7)})
        joined = natural_join(emp(), dept)
        assert len(joined) == 2  # the two rome employees
        assert joined.schema.attribute_names == ["id", "name", "city", "id2"]

    def test_rename(self):
        renamed = rename(emp(), {"city": "location"})
        assert "location" in renamed.schema.attribute_names
        assert renamed.schema.key == ("id",)

    def test_union_and_difference(self):
        schema = RelationSchema("T", [Attribute("a", IDS)])
        first = Relation(schema, {(1,), (2,)})
        second = Relation(schema, {(2,), (3,)})
        assert len(union(first, second)) == 3
        assert difference(first, second).rows == {(1,)}

    def test_union_incompatible(self):
        other = RelationSchema("U", [Attribute("b", IDS)])
        with pytest.raises(MetamodelError):
            union(Relation(RelationSchema("T", [Attribute("a", IDS)])),
                  Relation(other))


class TestDatabase:
    def test_lookup_and_replace(self):
        db = Database([emp()])
        assert db.relation("Emp") == emp()
        updated = db.with_relation(emp().insert((5, "bob", "rome")))
        assert len(updated.relation("Emp")) == 4
        assert len(db.relation("Emp")) == 3

    def test_unknown_relation(self):
        with pytest.raises(MetamodelError, match="Emp"):
            Database([emp()]).relation("Nope")

    def test_duplicate_relations_rejected(self):
        with pytest.raises(MetamodelError):
            Database([emp(), emp()])


class TestSpaces:
    def test_relation_space(self, rng):
        space = RelationSpace(emp_schema(), max_rows=5)
        sample = space.sample(rng)
        assert space.contains(sample)
        assert space.contains(space.empty())
        assert not space.contains("junk")

    def test_relation_space_checks_schema_name(self):
        other = RelationSchema("Other", emp_schema().attributes,
                               key=["id"])
        space = RelationSpace(emp_schema())
        assert not space.contains(Relation(other))

    def test_database_space(self, rng):
        space = DatabaseSpace([RelationSpace(emp_schema(), max_rows=3)])
        sample = space.sample(rng)
        assert space.contains(sample)
        assert space.contains(space.empty())
        assert not space.contains(Database([]))
