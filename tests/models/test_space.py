"""Unit and property tests for model spaces (repro.models.space)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ModelSpaceError
from repro.models.space import (
    FiniteSpace,
    IntRangeSpace,
    MappedSpace,
    PredicateSpace,
    ProductSpace,
    SumSpace,
    TextSpace,
    UniversalSpace,
)


class TestFiniteSpace:
    def test_membership_and_sampling(self, rng):
        space = FiniteSpace(["a", "b", "c"])
        assert space.contains("a")
        assert not space.contains("z")
        assert space.sample(rng) in {"a", "b", "c"}

    def test_enumeration(self):
        space = FiniteSpace([3, 1, 2])
        assert list(space.enumerate_members()) == [3, 1, 2]
        assert space.is_finite()
        assert len(space) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FiniteSpace([])

    def test_unhashable_members(self, rng):
        space = FiniteSpace([[1], [2]], hashable=False)
        assert space.contains([1])
        assert not space.contains([3])

    def test_unhashable_query_against_hashable_space(self):
        assert not FiniteSpace([1, 2]).contains([1])

    def test_validate_raises_with_context(self):
        space = FiniteSpace([1], name="ones")
        with pytest.raises(ModelSpaceError) as excinfo:
            space.validate(2)
        assert excinfo.value.value == 2


class TestPredicateSpace:
    def make(self) -> PredicateSpace:
        return PredicateSpace(
            predicate=lambda v: isinstance(v, int) and v % 2 == 0,
            sampler=lambda rng: rng.randrange(0, 100, 2),
            name="evens",
            explain=lambda v: "odd or not an int")

    def test_membership(self):
        space = self.make()
        assert space.contains(4)
        assert not space.contains(3)

    def test_validate_explains(self):
        with pytest.raises(ModelSpaceError, match="odd or not an int"):
            self.make().validate(3)

    def test_buggy_sampler_detected(self, rng):
        broken = PredicateSpace(
            predicate=lambda v: False,
            sampler=lambda rng: 1)
        with pytest.raises(ModelSpaceError, match="sampler is buggy"):
            broken.sample(rng)

    def test_not_enumerable(self):
        with pytest.raises(ModelSpaceError):
            list(self.make().enumerate_members())


class TestProductSpace:
    def test_membership(self, rng):
        space = ProductSpace(IntRangeSpace(0, 2), FiniteSpace(["x"]))
        assert space.contains((1, "x"))
        assert not space.contains((1, "y"))
        assert not space.contains((1,))
        assert not space.contains([1, "x"])
        assert space.contains(space.sample(rng))

    def test_enumeration(self):
        space = ProductSpace(IntRangeSpace(0, 1), IntRangeSpace(0, 1))
        assert sorted(space.enumerate_members()) == [
            (0, 0), (0, 1), (1, 0), (1, 1)]

    def test_requires_factor(self):
        with pytest.raises(ValueError):
            ProductSpace()


class TestSumSpace:
    def make(self) -> SumSpace:
        return SumSpace({"i": IntRangeSpace(0, 1),
                         "s": FiniteSpace(["x"])})

    def test_membership(self, rng):
        space = self.make()
        assert space.contains(("i", 1))
        assert space.contains(("s", "x"))
        assert not space.contains(("i", "x"))
        assert not space.contains(("unknown", 1))
        assert space.contains(space.sample(rng))

    def test_enumeration_sorted_by_tag(self):
        members = list(self.make().enumerate_members())
        assert members == [("i", 0), ("i", 1), ("s", "x")]


class TestMappedSpace:
    def make(self) -> MappedSpace:
        return MappedSpace(
            IntRangeSpace(0, 3),
            forward=str, backward=int,
            contains=lambda v: isinstance(v, str) and v.isdigit(),
            name="digit strings")

    def test_membership(self, rng):
        space = self.make()
        assert space.contains("2")
        assert not space.contains("9")
        assert not space.contains(2)
        assert space.contains(space.sample(rng))

    def test_enumeration_maps(self):
        assert list(self.make().enumerate_members()) == ["0", "1", "2", "3"]


class TestUniversalSpace:
    def test_contains_everything(self, rng):
        space = UniversalSpace()
        assert space.contains(object())
        assert space.contains(None)
        space.validate(42)  # must not raise
        space.sample(rng)


class TestIntRangeSpace:
    def test_membership_excludes_bools(self):
        space = IntRangeSpace(0, 1)
        assert space.contains(0)
        assert not space.contains(True)
        assert not space.contains(1.0)

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            IntRangeSpace(3, 2)

    @given(st.integers(-50, 50))
    @settings(max_examples=50, deadline=None)
    def test_membership_matches_bounds(self, value):
        space = IntRangeSpace(-10, 10)
        assert space.contains(value) == (-10 <= value <= 10)

    def test_sampling_in_range(self):
        space = IntRangeSpace(5, 9)
        rng = random.Random(1)
        assert all(5 <= space.sample(rng) <= 9 for _ in range(50))


class TestTextSpace:
    def test_membership(self):
        space = TextSpace("ab", min_length=1, max_length=3)
        assert space.contains("aba")
        assert not space.contains("")
        assert not space.contains("abab")
        assert not space.contains("xyz")
        assert not space.contains(7)

    def test_enumeration_small(self):
        space = TextSpace("ab", min_length=0, max_length=2)
        members = list(space.enumerate_members())
        assert "" in members and "ab" in members
        assert len(members) == 1 + 2 + 4

    def test_large_space_refuses_enumeration(self):
        space = TextSpace("abcdefgh", max_length=10)
        assert not space.is_finite()
        with pytest.raises(ModelSpaceError):
            list(space.enumerate_members())

    def test_sampling_reproducible(self):
        space = TextSpace()
        assert space.sample(random.Random(9)) == \
            space.sample(random.Random(9))


class TestSamplingDeterminism:
    """Identical seeds must give identical samples everywhere (the law
    harness's reproducibility guarantee)."""

    @pytest.mark.parametrize("space", [
        FiniteSpace([1, 2, 3]),
        IntRangeSpace(0, 99),
        ProductSpace(IntRangeSpace(0, 9), FiniteSpace("ab")),
        SumSpace({"a": IntRangeSpace(0, 3)}),
        TextSpace("abc", max_length=5),
    ])
    def test_reproducible(self, space):
        first = space.sample_many(random.Random(42), 10)
        second = space.sample_many(random.Random(42), 10)
        assert first == second
