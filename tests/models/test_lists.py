"""Unit tests for ordered-list models and helpers (repro.models.lists)."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelSpaceError
from repro.models.lists import (
    OrderedListSpace,
    append_sorted_block,
    dedupe_preserving_order,
    insert_sorted,
    stable_delete,
)
from repro.models.space import IntRangeSpace


class TestOrderedListSpace:
    def test_membership(self, rng):
        space = OrderedListSpace(IntRangeSpace(0, 5), max_length=4)
        assert space.contains((1, 2, 2))
        assert not space.contains([1, 2])
        assert not space.contains((9,))
        assert space.contains(space.sample(rng))

    def test_unique_mode(self, rng):
        space = OrderedListSpace(IntRangeSpace(0, 5), max_length=4,
                                 unique=True)
        assert space.contains((1, 2))
        assert not space.contains((1, 1))
        sample = space.sample(rng)
        assert len(set(sample)) == len(sample)

    def test_validate_messages(self):
        space = OrderedListSpace(IntRangeSpace(0, 5), unique=True)
        with pytest.raises(ModelSpaceError, match="expected a tuple"):
            space.validate([1])
        with pytest.raises(ModelSpaceError, match="element"):
            space.validate((9,))
        with pytest.raises(ModelSpaceError, match="duplicates"):
            space.validate((1, 1))

    def test_length_bounds_steer_sampling_only(self):
        space = OrderedListSpace(IntRangeSpace(0, 5), max_length=2)
        assert space.contains((1, 2, 3, 4))  # member despite bounds

    def test_enumeration_small(self):
        space = OrderedListSpace(IntRangeSpace(0, 1), max_length=2)
        members = list(space.enumerate_members())
        assert () in members and (0, 1) in members
        assert len(members) == 1 + 2 + 4

    def test_empty_helper(self):
        assert OrderedListSpace(IntRangeSpace(0, 1)).empty() == ()

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            OrderedListSpace(IntRangeSpace(0, 1), min_length=3,
                             max_length=1)


class TestHelpers:
    def test_stable_delete_keeps_order(self):
        assert stable_delete((3, 1, 4, 1, 5), lambda x: x != 1) == (3, 4, 5)

    def test_stable_delete_no_mutation(self):
        items = [3, 1, 4]
        stable_delete(items, lambda x: x > 1)
        assert items == [3, 1, 4]

    def test_append_sorted_block(self):
        result = append_sorted_block((5, 1), (4, 2, 3))
        assert result == (5, 1, 2, 3, 4)  # prefix untouched, block sorted

    def test_append_sorted_block_with_key(self):
        result = append_sorted_block(("z",), ("bb", "a"), key=len)
        assert result == ("z", "a", "bb")

    def test_insert_sorted_position(self):
        assert insert_sorted((1, 3, 5), 4) == (1, 3, 4, 5)
        assert insert_sorted((), 1) == (1,)
        assert insert_sorted((2, 1), 0) == (0, 2, 1)  # first fit only

    def test_dedupe_preserving_order(self):
        assert dedupe_preserving_order((3, 1, 3, 2, 1)) == (3, 1, 2)
        assert dedupe_preserving_order(()) == ()
