"""Unit tests for symmetric lenses (repro.core.symmetric)."""

from __future__ import annotations

from repro.core.laws import CheckConfig, check_symmetric_laws
from repro.core.symmetric import (
    ComposeSymmetricLens,
    FunctionalSymmetricLens,
    symmetric_from_bijection,
)
from repro.models.space import IntRangeSpace

CONFIG = CheckConfig(trials=100, seed=5, shrink=False)


def offset_lens() -> FunctionalSymmetricLens:
    """x <-> y where y = x + c and the complement remembers c."""
    return FunctionalSymmetricLens(
        "offset",
        IntRangeSpace(0, 20), IntRangeSpace(0, 40),
        missing=lambda: 0,
        putr=lambda x, c: (x + c, c),
        putl=lambda y, c: (max(y - c, 0), c),
    )


class TestFunctionalSymmetricLens:
    def test_putr_putl(self):
        lens = offset_lens()
        right, complement = lens.putr(3, 5)
        assert (right, complement) == (8, 5)
        left, complement = lens.putl(8, 5)
        assert (left, complement) == (3, 5)

    def test_sync_from_sides(self):
        lens = offset_lens()
        assert lens.sync_from_left(4) == (4, 0)
        assert lens.sync_from_right(4) == (4, 0)

    def test_round_trip_laws(self):
        report = check_symmetric_laws(offset_lens(), config=CONFIG)
        assert report.all_passed, report.summary()


class TestBijectionLift:
    def test_trivial_complement(self):
        from repro.models.space import FiniteSpace
        evens = FiniteSpace(range(0, 21, 2), name="evens")
        lens = symmetric_from_bijection(
            "double", IntRangeSpace(0, 10), evens,
            to_right=lambda x: 2 * x, to_left=lambda y: y // 2)
        assert lens.putr(3, None) == (6, None)
        assert lens.putl(6, None) == (3, None)
        report = check_symmetric_laws(lens, config=CONFIG)
        assert report.all_passed, report.summary()


class TestComposition:
    def make(self) -> ComposeSymmetricLens:
        from repro.models.space import FiniteSpace
        evens = FiniteSpace(range(2, 23, 2), name="evens")
        first = symmetric_from_bijection(
            "inc", IntRangeSpace(0, 10), IntRangeSpace(1, 11),
            to_right=lambda x: x + 1, to_left=lambda y: y - 1)
        second = symmetric_from_bijection(
            "double", IntRangeSpace(1, 11), evens,
            to_right=lambda x: 2 * x, to_left=lambda y: y // 2)
        return first >> second

    def test_complements_pair_up(self):
        lens = self.make()
        assert lens.missing() == (None, None)
        right, complement = lens.putr(3, lens.missing())
        assert right == 8
        assert complement == (None, None)

    def test_putl_reverses(self):
        lens = self.make()
        left, _complement = lens.putl(8, lens.missing())
        assert left == 3

    def test_composed_laws(self):
        report = check_symmetric_laws(self.make(), config=CONFIG)
        assert report.all_passed, report.summary()


class TestForgetfulBx:
    def test_state_view_loses_complement(self):
        """Forgetting the complement resets the offset to the default."""
        lens = offset_lens()
        bx = lens.to_bx()
        # With the default complement 0, fwd(x) == x.
        assert bx.fwd(5, 99) == 5
        assert bx.consistent(5, 5)
        assert not bx.consistent(5, 9)
        assert bx.bwd(99, 7) == 7
