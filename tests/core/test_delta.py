"""Unit and property tests for delta bx (repro.core.delta)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.delta import (
    Delete,
    EditScript,
    FunctionalDeltaBx,
    Identity,
    Insert,
    Update,
    diff_sequences,
)
from repro.core.errors import EditError
from repro.models.space import IntRangeSpace
from repro.models.lists import OrderedListSpace


class TestPrimitiveEdits:
    def test_identity(self):
        assert Identity().apply((1, 2)) == (1, 2)
        assert Identity().inverse((1, 2)) == Identity()

    def test_insert(self):
        assert Insert(1, 9).apply((1, 2)) == (1, 9, 2)
        assert Insert(0, 9).apply(()) == (9,)

    def test_insert_out_of_range(self):
        with pytest.raises(EditError):
            Insert(3, 9).apply((1,))

    def test_delete(self):
        assert Delete(0).apply((1, 2)) == (2,)

    def test_delete_out_of_range(self):
        with pytest.raises(EditError):
            Delete(2).apply((1, 2))

    def test_update(self):
        assert Update(1, 9).apply((1, 2)) == (1, 9)

    def test_inverses_restore(self):
        model = (1, 2, 3)
        for edit in (Insert(1, 9), Delete(2), Update(0, 7)):
            edited = edit.apply(model)
            assert edit.inverse(model).apply(edited) == model


class TestEditScript:
    def test_applies_in_order(self):
        script = EditScript([Insert(0, 1), Insert(1, 2), Delete(0)])
        assert script.apply(()) == (2,)

    def test_flattens_nested_scripts(self):
        inner = EditScript([Insert(0, 1)])
        outer = EditScript([inner, Insert(1, 2)])
        assert len(outer) == 2
        assert all(not isinstance(edit, EditScript)
                   for edit in outer.edits)

    def test_drops_identities(self):
        script = EditScript([Identity(), Insert(0, 1), Identity()])
        assert len(script) == 1

    def test_script_inverse_restores(self):
        model = (1, 2, 3, 4)
        script = EditScript([Delete(0), Insert(2, 9), Update(0, 5)])
        edited = script.apply(model)
        assert script.inverse(model).apply(edited) == model

    def test_then_chains(self):
        chained = Insert(0, 1).then(Insert(1, 2))
        assert chained.apply(()) == (1, 2)

    def test_is_identity(self):
        assert EditScript([]).is_identity()
        assert not EditScript([Delete(0)]).is_identity()


class TestDiffSequences:
    def test_empty_cases(self):
        assert diff_sequences((), ()).is_identity()
        assert diff_sequences((), (1,)).apply(()) == (1,)
        assert diff_sequences((1,), ()).apply((1,)) == ()

    def test_diff_is_minimal_for_single_change(self):
        script = diff_sequences((1, 2, 3), (1, 9, 2, 3))
        assert len(script) == 1

    @given(st.lists(st.integers(0, 5), max_size=8),
           st.lists(st.integers(0, 5), max_size=8))
    @settings(max_examples=200, deadline=None)
    def test_diff_transforms_old_into_new(self, old, new):
        script = diff_sequences(old, new)
        assert script.apply(tuple(old)) == tuple(new)

    @given(st.lists(st.integers(0, 5), max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_diff_to_self_is_identity(self, items):
        assert diff_sequences(items, items).is_identity()


def mirrored_delta_bx() -> FunctionalDeltaBx:
    """Left and right are equal tuples; edits propagate verbatim."""
    space = OrderedListSpace(IntRangeSpace(0, 9), max_length=6)
    return FunctionalDeltaBx(
        "mirror",
        space, space,
        consistent=lambda left, right: left == right,
        propagate_fwd=lambda edit, left, right: edit,
        propagate_bwd=lambda edit, left, right: edit,
        create_left=lambda right: right,
        create_right=lambda left: left,
    )


class TestDeltaBx:
    def test_step_fwd(self):
        bx = mirrored_delta_bx()
        left, right = bx.step_fwd(Insert(0, 5), (1,), (1,))
        assert left == (5, 1)
        assert right == (5, 1)

    def test_step_bwd(self):
        bx = mirrored_delta_bx()
        left, right = bx.step_bwd(Delete(0), (1, 2), (1, 2))
        assert left == (2,)
        assert right == (2,)

    def test_round_trip_stability(self):
        """Propagating an edit then its inverse restores both models."""
        bx = mirrored_delta_bx()
        left = right = (1, 2, 3)
        edit = Delete(1)
        new_left, new_right = bx.step_fwd(edit, left, right)
        undo = edit.inverse(left)
        back_left, back_right = bx.step_fwd(undo, new_left, new_right)
        assert (back_left, back_right) == (left, right)

    def test_to_state_bx(self):
        state = mirrored_delta_bx().to_state_bx()
        assert state.consistent((1, 2), (1, 2))
        assert state.fwd((1, 2, 3), (1, 2)) == (1, 2, 3)
        assert state.bwd((1, 2), (7, 2)) == (7, 2)
