"""Unit and law tests for lens combinators (repro.core.combinators)."""

from __future__ import annotations

import pytest

from repro.core.combinators import (
    ComposeLens,
    CondLens,
    ConstLens,
    FieldLens,
    FieldsLens,
    FstLens,
    IdentityLens,
    IndexLens,
    ListFilterLens,
    ListMapLens,
    ProductLens,
    SndLens,
    dict_space,
    list_space,
)
from repro.core.errors import TransformationError
from repro.core.laws import CheckConfig, check_lens_laws
from repro.core.lens import IsoLens
from repro.models.space import FiniteSpace, IntRangeSpace

CONFIG = CheckConfig(trials=100, seed=11, shrink=False)
SMALL = IntRangeSpace(0, 5)


def assert_well_behaved(lens, include_create: bool = True) -> None:
    laws = ["GetPut", "PutGet"] + (["CreateGet"] if include_create else [])
    report = check_lens_laws(lens, laws=laws, config=CONFIG)
    assert report.all_passed, report.summary()


class TestIdentityLens:
    def test_trivial(self):
        lens = IdentityLens(SMALL)
        assert lens.get(3) == 3
        assert lens.put(4, 3) == 4
        assert lens.create(5) == 5
        assert_well_behaved(lens)


class TestComposeLens:
    def make(self) -> ComposeLens:
        evens = FiniteSpace([2, 4, 6, 8, 10, 12], name="evens")
        inc = IsoLens("inc", IntRangeSpace(0, 5), IntRangeSpace(1, 6),
                      forward=lambda s: s + 1, backward=lambda v: v - 1)
        double = IsoLens("double", IntRangeSpace(1, 6), evens,
                         forward=lambda s: 2 * s, backward=lambda v: v // 2)
        return ComposeLens(inc, double)

    def test_get_runs_left_to_right(self):
        assert self.make().get(3) == 8

    def test_put_threads_intermediate(self):
        assert self.make().put(8, 0) == 3

    def test_create_composes(self):
        assert self.make().create(12) == 5

    def test_laws(self):
        assert_well_behaved(self.make())

    def test_operator_form(self):
        lens = self.make()
        again = lens.first >> lens.second
        assert again.get(2) == lens.get(2)


class TestProductLens:
    def make(self) -> ProductLens:
        left = IdentityLens(SMALL, "l")
        right = IsoLens("neg", IntRangeSpace(0, 5), IntRangeSpace(-5, 0),
                        forward=lambda s: -s, backward=lambda v: -v)
        return ProductLens(left, right)

    def test_componentwise(self):
        lens = self.make()
        assert lens.get((2, 3)) == (2, -3)
        assert lens.put((4, -1), (2, 3)) == (4, 1)
        assert lens.create((1, -2)) == (1, 2)

    def test_laws(self):
        assert_well_behaved(self.make())

    def test_operator_form(self):
        lens = IdentityLens(SMALL) * IdentityLens(SMALL)
        assert lens.get((1, 2)) == (1, 2)


class TestProjectionLenses:
    def test_fst(self):
        lens = FstLens(SMALL, SMALL, default_second=0)
        assert lens.get((1, 2)) == 1
        assert lens.put(5, (1, 2)) == (5, 2)
        assert lens.create(3) == (3, 0)
        assert_well_behaved(lens)

    def test_snd(self):
        lens = SndLens(SMALL, SMALL, default_first=0)
        assert lens.get((1, 2)) == 2
        assert lens.put(5, (1, 2)) == (1, 5)
        assert lens.create(3) == (0, 3)
        assert_well_behaved(lens)

    def test_fst_without_default_has_no_create(self):
        assert not FstLens(SMALL, SMALL).has_create()


class TestConstLens:
    def test_collapses(self):
        lens = ConstLens(SMALL, "k", default_source=0)
        assert lens.get(3) == "k"
        assert lens.put("k", 3) == 3
        assert lens.create("k") == 0

    def test_put_rejects_other_views(self):
        lens = ConstLens(SMALL, "k")
        with pytest.raises(TransformationError):
            lens.put("other", 3)

    def test_laws(self):
        assert_well_behaved(ConstLens(SMALL, "k", default_source=0))


class TestFieldLenses:
    SPACE = dict_space({"a": SMALL, "b": SMALL})

    def test_field_focus(self):
        lens = FieldLens("a", self.SPACE, SMALL,
                         default_source={"a": 0, "b": 0})
        assert lens.get({"a": 1, "b": 2}) == 1
        assert lens.put(5, {"a": 1, "b": 2}) == {"a": 5, "b": 2}
        assert lens.create(7) == {"a": 7, "b": 0}
        assert_well_behaved(lens)

    def test_field_put_does_not_mutate(self):
        lens = FieldLens("a", self.SPACE, SMALL)
        source = {"a": 1, "b": 2}
        lens.put(5, source)
        assert source == {"a": 1, "b": 2}

    def test_field_missing_key_raises(self):
        lens = FieldLens("missing", self.SPACE, SMALL)
        with pytest.raises(TransformationError):
            lens.get({"a": 1, "b": 2})

    def test_fields_subdict(self):
        lens = FieldsLens(["a"], self.SPACE,
                          dict_space({"a": SMALL}),
                          default_source={"a": 0, "b": 0})
        assert lens.get({"a": 1, "b": 2}) == {"a": 1}
        assert lens.put({"a": 9}, {"a": 1, "b": 2}) == {"a": 9, "b": 2}
        assert_well_behaved(lens)

    def test_fields_rejects_wrong_view_keys(self):
        lens = FieldsLens(["a"], self.SPACE, dict_space({"a": SMALL}))
        with pytest.raises(TransformationError):
            lens.put({"b": 1}, {"a": 1, "b": 2})


class TestIndexLens:
    def test_focus_position(self):
        from repro.models.space import ProductSpace
        pairs = ProductSpace(SMALL, SMALL)
        lens = IndexLens(1, pairs, SMALL)
        assert lens.get((1, 2)) == 2
        assert lens.put(5, (1, 2)) == (1, 5)
        assert_well_behaved(lens, include_create=False)


class TestListMapLens:
    def make(self) -> ListMapLens:
        inc = IsoLens("inc", IntRangeSpace(0, 5), IntRangeSpace(1, 6),
                      forward=lambda s: s + 1, backward=lambda v: v - 1)
        return ListMapLens(inc, max_length=5)

    def test_maps_elementwise(self):
        lens = self.make()
        assert lens.get((1, 2, 3)) == (2, 3, 4)
        assert lens.put((5, 6), (1, 2, 3)) == (4, 5)

    def test_put_grows_via_create(self):
        lens = self.make()
        assert lens.put((2, 3, 4, 5), (0,)) == (1, 2, 3, 4)

    def test_laws(self):
        assert_well_behaved(self.make())


class TestListFilterLens:
    def make(self) -> ListFilterLens:
        return ListFilterLens(IntRangeSpace(0, 9),
                              keep=lambda item: item % 2 == 0,
                              max_length=6, name="evens")

    def test_get_filters(self):
        assert self.make().get((1, 2, 3, 4)) == (2, 4)

    def test_put_preserves_hidden(self):
        lens = self.make()
        assert lens.put((6, 8), (1, 2, 3, 4)) == (1, 6, 3, 8)

    def test_put_deletes_surplus_kept_positions(self):
        lens = self.make()
        assert lens.put((6,), (1, 2, 3, 4)) == (1, 6, 3)

    def test_put_appends_extra_view_elements(self):
        lens = self.make()
        assert lens.put((2, 4, 6), (1, 2)) == (1, 2, 4, 6)

    def test_put_rejects_filtered_elements(self):
        with pytest.raises(TransformationError):
            self.make().put((3,), (2,))

    def test_getput_and_putget(self):
        assert_well_behaved(self.make())


class TestCondLens:
    def make(self) -> CondLens:
        """Region-disjoint cond: sources/views < 5 mirror, >= 5 identity."""
        space = IntRangeSpace(0, 9)
        plain = IdentityLens(space, "id")
        mirror = IsoLens("mirror", space, space,
                         forward=lambda s: 4 - s if s < 5 else s,
                         backward=lambda v: 4 - v if v < 5 else v)
        return CondLens(lambda s: s < 5, mirror, plain,
                        view_predicate=lambda v: v < 5)

    def test_branches_on_source(self):
        lens = self.make()
        assert lens.get(1) == 3    # then branch: 4 - 1
        assert lens.get(7) == 7    # else branch

    def test_put_branches_on_view(self):
        lens = self.make()
        assert lens.put(3, 7) == 1  # view in then region: 4 - 3
        assert lens.put(8, 1) == 8  # view in else region: identity

    def test_laws(self):
        assert_well_behaved(self.make(), include_create=False)

    def test_source_branching_detects_region_flip(self):
        space = IntRangeSpace(0, 9)
        plain = IdentityLens(space, "id")
        negate = IsoLens("mirror", space, space,
                         forward=lambda s: 9 - s, backward=lambda v: 9 - v)
        unstable = CondLens(lambda s: s < 5, negate, plain)
        # view 8 written through the then branch gives 1, whose get is 8
        # again — stable, allowed.
        assert unstable.put(8, 2) == 1
        # But a view that cannot be recovered raises instead of breaking
        # PutGet: source 7 (else, identity) with view 2 writes 2, whose
        # get goes through the *then* branch giving 7 != 2.
        with pytest.raises(TransformationError):
            unstable.put(2, 7)


class TestSpaces:
    def test_list_space_membership(self, rng):
        space = list_space(SMALL, max_length=3)
        assert space.contains((1, 2))
        assert not space.contains([1, 2])
        assert not space.contains((1, 99))
        sample = space.sample(rng)
        assert space.contains(sample)

    def test_dict_space_membership(self, rng):
        space = dict_space({"a": SMALL})
        assert space.contains({"a": 3})
        assert not space.contains({"a": 3, "b": 1})
        assert not space.contains({"a": 99})
        assert space.contains(space.sample(rng))
