"""Unit tests for the property vocabulary (repro.core.properties)."""

from __future__ import annotations

import pytest

from repro.core.bx import BijectiveBx, FunctionalBx, TrivialBx
from repro.core.properties import (
    PROPERTY_REGISTRY,
    CheckStatus,
    Correct,
    Hippocratic,
    HistoryIgnorant,
    LeastChange,
    SimplyMatching,
    Undoable,
    get_property,
    register_property,
    standard_properties,
)
from repro.models.space import IntRangeSpace


def good_bx() -> BijectiveBx:
    return BijectiveBx("good", IntRangeSpace(0, 20), IntRangeSpace(0, 20),
                       to_right=lambda m: m, to_left=lambda n: n)


def broken_fwd_bx() -> FunctionalBx:
    """fwd does not restore consistency: a correctness violation."""
    return FunctionalBx(
        "broken", IntRangeSpace(0, 20), IntRangeSpace(0, 20),
        consistent=lambda m, n: m == n,
        fwd=lambda m, n: n,    # ignores m: wrong
        bwd=lambda m, n: n)


def meddling_bx() -> FunctionalBx:
    """Restoration gratuitously rewrites consistent states."""
    return FunctionalBx(
        "meddler", IntRangeSpace(0, 20), IntRangeSpace(0, 20),
        consistent=lambda m, n: True,      # everything consistent
        fwd=lambda m, n: (n + 1) % 21,     # ... but fwd still changes n
        bwd=lambda m, n: m)


class TestCorrect:
    def test_passes_good(self):
        result = Correct().check(good_bx(), trials=60)
        assert result.status is CheckStatus.PASSED
        assert result.trials == 60

    def test_fails_broken_with_witness(self):
        result = Correct().check(broken_fwd_bx(), trials=60)
        assert result.status is CheckStatus.FAILED
        assert result.counterexample is not None
        assert result.counterexample["direction"] == "fwd"

    def test_describe_mentions_counterexample(self):
        result = Correct().check(broken_fwd_bx(), trials=60)
        assert "counterexample" in result.describe()


class TestHippocratic:
    def test_passes_good(self):
        assert Hippocratic().check(good_bx(), trials=60).passed

    def test_fails_meddler(self):
        result = Hippocratic().check(meddling_bx(), trials=60)
        assert result.failed
        assert result.counterexample["direction"] == "fwd"


class TestUndoable:
    def test_passes_bijection(self):
        assert Undoable().check(good_bx(), trials=60).passed

    def test_fails_lossy(self):
        """A bx that floors to even numbers loses the parity bit."""
        lossy = FunctionalBx(
            "floor2", IntRangeSpace(0, 20), IntRangeSpace(0, 20),
            consistent=lambda m, n: n == m - (m % 2),
            fwd=lambda m, n: m - (m % 2),
            bwd=lambda m, n: n)  # forgets the original parity of m
        result = Undoable().check(lossy, trials=120)
        assert result.failed


class TestHistoryIgnorant:
    def test_passes_bijection(self):
        assert HistoryIgnorant().check(good_bx(), trials=60).passed

    def test_passes_trivial(self):
        bx = TrivialBx(IntRangeSpace(0, 5), IntRangeSpace(0, 5))
        assert HistoryIgnorant().check(bx, trials=60).passed

    def test_fails_on_composers(self):
        from repro.catalogue.composers import composers_bx
        assert HistoryIgnorant().check(composers_bx(), trials=200).failed


class TestSimplyMatching:
    def test_skips_without_protocol(self):
        result = SimplyMatching().check(good_bx(), trials=10)
        assert result.status is CheckStatus.SKIPPED
        assert "matching keys" in result.note

    def test_passes_composers(self):
        from repro.catalogue.composers import composers_bx
        assert SimplyMatching().check(composers_bx(), trials=150).passed

    def test_sees_through_checked_wrapper(self):
        from repro.catalogue.composers import composers_bx
        checked = composers_bx().checked()
        result = SimplyMatching().check(checked, trials=60)
        assert result.status is not CheckStatus.SKIPPED

    def test_fails_modifying_variant(self):
        from repro.catalogue.composers import KeyOnNameComposersBx
        assert SimplyMatching().check(KeyOnNameComposersBx(),
                                      trials=200).failed


class TestLeastChange:
    def test_identity_bx_is_least_change(self):
        prop = LeastChange(right_distance=lambda a, b: abs(a - b))
        assert prop.check(good_bx(), trials=40).passed

    def test_detects_gratuitous_distance(self):
        """A correct bx that restores to a far-away consistent value."""
        wasteful = FunctionalBx(
            "wasteful", IntRangeSpace(0, 10), IntRangeSpace(0, 10),
            consistent=lambda m, n: True,
            fwd=lambda m, n: (n + 5) % 11,   # consistent, but far
            bwd=lambda m, n: m)
        prop = LeastChange(right_distance=lambda a, b: abs(a - b))
        assert prop.check(wasteful, trials=40).failed


class TestRegistry:
    def test_standard_names_registered(self):
        for name in ("correct", "hippocratic", "undoable",
                     "history ignorant", "simply matching"):
            assert name in PROPERTY_REGISTRY

    def test_get_property(self):
        assert get_property("correct").name == "correct"

    def test_get_property_unknown_lists_known(self):
        with pytest.raises(KeyError, match="correct"):
            get_property("nonsense")

    def test_standard_properties_order(self):
        names = [prop.name for prop in standard_properties()]
        assert names == ["correct", "hippocratic", "undoable",
                         "history ignorant", "simply matching"]

    def test_register_is_idempotent_by_name(self):
        before = len(PROPERTY_REGISTRY)
        register_property(Correct())
        assert len(PROPERTY_REGISTRY) == before
