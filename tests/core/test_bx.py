"""Unit tests for the state-based bx kernel (repro.core.bx)."""

from __future__ import annotations

import random

import pytest

from repro.core.bx import (
    BijectiveBx,
    DualBx,
    FunctionalBx,
    IdentityBx,
    SpaceCheckedBx,
    TrivialBx,
)
from repro.core.errors import (
    ConsistencyError,
    ModelSpaceError,
    TransformationError,
)
from repro.models.space import IntRangeSpace


def double_bx() -> FunctionalBx:
    """m <-> n with n == 2m; total and well behaved on its spaces."""
    return FunctionalBx(
        name="double",
        left_space=IntRangeSpace(0, 30),
        right_space=IntRangeSpace(0, 60),
        consistent=lambda m, n: n == 2 * m,
        fwd=lambda m, n: 2 * m,
        bwd=lambda m, n: n // 2,
        default_left=lambda: 0,
        default_right=lambda: 0,
    )


class TestFunctionalBx:
    def test_consistent(self):
        bx = double_bx()
        assert bx.consistent(3, 6)
        assert not bx.consistent(3, 7)

    def test_fwd_and_bwd(self):
        bx = double_bx()
        assert bx.fwd(5, 99) == 10
        assert bx.bwd(99, 10) == 5

    def test_restore_dispatch(self):
        bx = double_bx()
        assert bx.restore(5, 0, "fwd") == 10
        assert bx.restore(0, 10, "bwd") == 5

    def test_restore_rejects_bad_direction(self):
        with pytest.raises(ValueError, match="fwd.*bwd"):
            double_bx().restore(1, 2, "sideways")

    def test_synchronise_left_authoritative(self):
        assert double_bx().synchronise(4, 0, "left") == (4, 8)

    def test_synchronise_right_authoritative(self):
        assert double_bx().synchronise(0, 8, "right") == (4, 8)

    def test_synchronise_rejects_bad_side(self):
        with pytest.raises(ValueError):
            double_bx().synchronise(1, 2, "middle")

    def test_defaults_and_creates(self):
        bx = double_bx()
        assert bx.default_left() == 0
        assert bx.create_right(7) == 14
        assert bx.create_left(14) == 7

    def test_missing_defaults_raise(self):
        bx = FunctionalBx("bare", IntRangeSpace(0, 1), IntRangeSpace(0, 1),
                          lambda m, n: True, lambda m, n: n,
                          lambda m, n: m)
        with pytest.raises(TransformationError):
            bx.default_left()
        with pytest.raises(TransformationError):
            bx.default_right()

    def test_check_consistent_raises_with_payload(self):
        bx = double_bx()
        with pytest.raises(ConsistencyError) as excinfo:
            bx.check_consistent(1, 3)
        assert excinfo.value.left == 1
        assert excinfo.value.right == 3


class TestBijectiveBx:
    def test_round_trips(self):
        bx = BijectiveBx("neg", IntRangeSpace(-5, 5), IntRangeSpace(-5, 5),
                         to_right=lambda m: -m, to_left=lambda n: -n)
        assert bx.fwd(3, 99) == -3
        assert bx.bwd(99, -3) == 3
        assert bx.consistent(2, -2)
        assert bx.create_right(1) == -1
        assert bx.create_left(-1) == 1


class TestDualBx:
    def test_dual_swaps_spaces_and_directions(self):
        bx = double_bx()
        dual = bx.dual()
        assert isinstance(dual, DualBx)
        assert dual.left_space is bx.right_space
        assert dual.consistent(6, 3)
        assert dual.fwd(6, 99) == 3   # dual fwd == inner bwd
        assert dual.bwd(99, 4) == 8   # dual bwd == inner fwd

    def test_dual_of_dual_is_original(self):
        bx = double_bx()
        assert bx.dual().dual() is bx

    def test_dual_defaults(self):
        assert double_bx().dual().default_left() == 0


class TestIdentityAndTrivial:
    def test_identity(self):
        bx = IdentityBx(IntRangeSpace(0, 9))
        assert bx.consistent(4, 4)
        assert not bx.consistent(4, 5)
        assert bx.fwd(4, 5) == 4
        assert bx.bwd(4, 5) == 5

    def test_trivial_changes_nothing(self):
        bx = TrivialBx(IntRangeSpace(0, 9), IntRangeSpace(0, 9))
        assert bx.consistent(1, 8)
        assert bx.fwd(1, 8) == 8
        assert bx.bwd(1, 8) == 1


class TestSpaceCheckedBx:
    def test_accepts_members(self):
        checked = double_bx().checked()
        assert checked.fwd(3, 0) == 6

    def test_rejects_non_member_arguments(self):
        checked = double_bx().checked()
        with pytest.raises(ModelSpaceError):
            checked.fwd(-1, 0)
        with pytest.raises(ModelSpaceError):
            checked.bwd(0, 61)

    def test_rejects_non_member_results(self):
        bad = FunctionalBx(
            "escapes", IntRangeSpace(0, 5), IntRangeSpace(0, 5),
            consistent=lambda m, n: True,
            fwd=lambda m, n: 99,   # outside the right space
            bwd=lambda m, n: m)
        with pytest.raises(ModelSpaceError):
            bad.checked().fwd(1, 1)

    def test_checked_is_idempotent(self):
        checked = double_bx().checked()
        assert checked.checked() is checked

    def test_wrapper_preserves_identity_facts(self):
        bx = double_bx()
        checked = bx.checked()
        assert isinstance(checked, SpaceCheckedBx)
        assert checked.name == bx.name
        assert checked.consistent(2, 4)


class TestSampling:
    def test_sample_pair_members(self, rng):
        bx = double_bx()
        left, right = bx.sample_pair(rng)
        assert bx.left_space.contains(left)
        assert bx.right_space.contains(right)

    def test_sample_consistent_pair_is_consistent(self, rng):
        bx = double_bx()
        for _ in range(50):
            left, right = bx.sample_consistent_pair(rng)
            assert bx.consistent(left, right)

    def test_consistent_pair_perturbation_explores_order(self):
        """Sequence-valued right models must not always arrive sorted."""
        from repro.catalogue.composers import composers_bx

        bx = composers_bx()
        rng = random.Random(3)
        saw_unsorted = False
        for _ in range(120):
            _left, right = bx.sample_consistent_pair(rng)
            if list(right) != sorted(right):
                saw_unsorted = True
                break
        assert saw_unsorted, (
            "perturbation never produced an unsorted consistent list; "
            "hippocraticness checks would be blind to reordering")
