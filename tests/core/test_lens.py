"""Unit tests for asymmetric lenses (repro.core.lens)."""

from __future__ import annotations

import pytest

from repro.core.errors import TransformationError
from repro.core.lens import LENS_LAWS, FunctionalLens, IsoLens
from repro.models.space import IntRangeSpace, ProductSpace


def fst_lens() -> FunctionalLens:
    """Project the first of a pair; put restores the second component."""
    pairs = ProductSpace(IntRangeSpace(0, 9), IntRangeSpace(0, 9))
    return FunctionalLens(
        "fst", pairs, IntRangeSpace(0, 9),
        get=lambda source: source[0],
        put=lambda view, source: (view, source[1]),
        create=lambda view: (view, 0))


class TestFunctionalLens:
    def test_get_put_create(self):
        lens = fst_lens()
        assert lens.get((3, 4)) == 3
        assert lens.put(7, (3, 4)) == (7, 4)
        assert lens.create(5) == (5, 0)
        assert lens.has_create()

    def test_create_optional(self):
        lens = FunctionalLens("nocreate", IntRangeSpace(0, 1),
                              IntRangeSpace(0, 1),
                              get=lambda s: s, put=lambda v, s: v)
        assert not lens.has_create()
        with pytest.raises(TransformationError):
            lens.create(0)

    def test_to_bx_semantics(self):
        bx = fst_lens().to_bx()
        assert bx.consistent((3, 4), 3)
        assert not bx.consistent((3, 4), 9)
        assert bx.fwd((3, 4), 99) == 3
        assert bx.bwd((3, 4), 7) == (7, 4)
        assert bx.create_left(5) == (5, 0)
        assert bx.create_right((3, 4)) == 3

    def test_operators_delegate_to_combinators(self):
        lens = fst_lens()
        composed = lens >> IsoLens(
            "neg", IntRangeSpace(0, 9), IntRangeSpace(-9, 0),
            forward=lambda v: -v, backward=lambda v: -v)
        assert composed.get((3, 4)) == -3
        assert composed.put(-7, (3, 4)) == (7, 4)


class TestIsoLens:
    def test_iso_round_trip(self):
        iso = IsoLens("inc", IntRangeSpace(0, 8), IntRangeSpace(1, 9),
                      forward=lambda s: s + 1, backward=lambda v: v - 1)
        assert iso.get(4) == 5
        assert iso.put(5, 0) == 4  # old source ignored
        assert iso.create(9) == 8

    def test_inverse(self):
        iso = IsoLens("inc", IntRangeSpace(0, 8), IntRangeSpace(1, 9),
                      forward=lambda s: s + 1, backward=lambda v: v - 1)
        inv = iso.inverse()
        assert inv.get(5) == 4
        assert inv.source_space is iso.view_space


class TestLawFunctions:
    """Exercise the raw law checkers on known-good and known-bad lenses."""

    def test_getput_detects_violation(self):
        checker, _spec = LENS_LAWS["GetPut"]
        bad = FunctionalLens(
            "resets", ProductSpace(IntRangeSpace(0, 9), IntRangeSpace(0, 9)),
            IntRangeSpace(0, 9),
            get=lambda s: s[0],
            put=lambda v, s: (v, 0))  # forgets the second component
        witness = checker(bad, (3, 4), 3)
        assert witness is not None
        assert witness["source"] == (3, 4)

    def test_putget_detects_violation(self):
        checker, _spec = LENS_LAWS["PutGet"]
        bad = FunctionalLens(
            "clamps", IntRangeSpace(0, 9), IntRangeSpace(0, 9),
            get=lambda s: s,
            put=lambda v, s: min(v, 5))  # silently clamps the view
        assert checker(bad, 0, 9) is not None
        assert checker(bad, 0, 3) is None

    def test_createget_skips_without_create(self):
        checker, _spec = LENS_LAWS["CreateGet"]
        lens = FunctionalLens("nocreate", IntRangeSpace(0, 9),
                              IntRangeSpace(0, 9),
                              get=lambda s: s, put=lambda v, s: v)
        assert checker(lens, 1, 2) is None  # skip, not failure

    def test_putput_detects_resourcefulness(self):
        checker, _spec = LENS_LAWS["PutPut"]

        def put(view, source):
            # History-sensitive: remembers how often it was poked.
            return (view, source[1] + 1)

        lens = FunctionalLens(
            "counts", ProductSpace(IntRangeSpace(0, 9), IntRangeSpace(0, 99)),
            IntRangeSpace(0, 9),
            get=lambda s: s[0], put=put)
        assert checker(lens, (1, 0), 2, 3) is not None

    def test_laws_pass_on_good_lens(self):
        lens = fst_lens()
        for law_name, (checker, spec) in LENS_LAWS.items():
            args = [(3, 4) if ch == "s" else 7 for ch in spec]
            assert checker(lens, *args) is None, law_name
