"""Unit tests for the law-checking harness (repro.core.laws)."""

from __future__ import annotations

import pytest

from repro.core.bx import BijectiveBx, FunctionalBx
from repro.core.errors import LawViolation
from repro.core.laws import (
    CheckConfig,
    CheckReport,
    LawResult,
    check_lens_laws,
    shrink_value,
    verify_property_claims,
)
from repro.core.lens import FunctionalLens
from repro.core.properties import CheckStatus
from repro.models.space import IntRangeSpace
from repro.models.lists import OrderedListSpace


class TestCheckConfig:
    def test_defaults(self):
        config = CheckConfig()
        assert config.trials == 200
        assert config.shrink

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CheckConfig().trials = 5  # type: ignore[misc]


class TestExhaustiveUpgrade:
    def test_small_finite_spaces_checked_exhaustively(self):
        lens = FunctionalLens(
            "id", IntRangeSpace(0, 5), IntRangeSpace(0, 5),
            get=lambda s: s, put=lambda v, s: v)
        report = check_lens_laws(lens, laws=["GetPut", "PutGet"],
                                 config=CheckConfig(trials=5))
        for result in report.results:
            assert result.exhaustive
            assert result.trials == 36  # 6 x 6 scenarios

    def test_large_spaces_fall_back_to_sampling(self):
        lens = FunctionalLens(
            "id", IntRangeSpace(0, 100), IntRangeSpace(0, 100),
            get=lambda s: s, put=lambda v, s: v)
        report = check_lens_laws(
            lens, laws=["GetPut"],
            config=CheckConfig(trials=17, exhaustive_limit=100))
        result = report.result_for("GetPut")
        assert not result.exhaustive
        assert result.trials == 17


class TestShrinking:
    def test_shrink_value_minimises_tuples(self):
        space = OrderedListSpace(IntRangeSpace(0, 9), max_length=10)

        def still_fails(candidate) -> bool:
            return 7 in candidate

        shrunk = shrink_value((1, 7, 3, 7, 5), space, still_fails)
        assert shrunk == (7,)

    def test_shrink_respects_membership(self):
        space = OrderedListSpace(IntRangeSpace(0, 9), min_length=0,
                                 max_length=10, unique=True)

        def still_fails(candidate) -> bool:
            return len(candidate) >= 2

        shrunk = shrink_value((1, 2, 3), space, still_fails)
        assert len(shrunk) == 2

    def test_shrink_survives_raising_predicate(self):
        space = OrderedListSpace(IntRangeSpace(0, 9), max_length=10)

        def explodes(candidate) -> bool:
            if not candidate:
                raise RuntimeError("boom")
            return 7 in candidate

        shrunk = shrink_value((7, 1), space, explodes)
        assert shrunk == (7,)

    def test_reported_counterexample_is_shrunk(self):
        lens = FunctionalLens(
            "bad-on-7", OrderedListSpace(IntRangeSpace(0, 9), max_length=6),
            OrderedListSpace(IntRangeSpace(0, 9), max_length=6),
            get=lambda s: s,
            put=lambda v, s: tuple(x for x in v if x != 7))  # drops 7s
        report = check_lens_laws(lens, laws=["PutGet"],
                                 config=CheckConfig(trials=400, seed=1))
        result = report.result_for("PutGet")
        assert result.failed
        view = result.counterexample["view"]
        assert view == (7,), f"expected minimal witness, got {view!r}"


class TestCheckReport:
    def make_report(self) -> CheckReport:
        report = CheckReport(subject="demo")
        report.add(LawResult("A", "demo", CheckStatus.PASSED, trials=3))
        report.add(LawResult("B", "demo", CheckStatus.FAILED, trials=1,
                             counterexample={"x": 1}))
        return report

    def test_failures_and_all_passed(self):
        report = self.make_report()
        assert not report.all_passed
        assert [r.law for r in report.failures] == ["B"]

    def test_result_for(self):
        assert self.make_report().result_for("A").passed
        with pytest.raises(KeyError):
            self.make_report().result_for("missing")

    def test_summary_mentions_verdict(self):
        assert "1 LAW(S) VIOLATED" in self.make_report().summary()

    def test_raise_on_failure(self):
        with pytest.raises(LawViolation) as excinfo:
            self.make_report().raise_on_failure()
        assert excinfo.value.law == "B"
        assert excinfo.value.counterexample == {"x": 1}

    def test_skipped_does_not_fail_report(self):
        report = CheckReport(subject="demo")
        report.add(LawResult("A", "demo", CheckStatus.SKIPPED))
        assert report.all_passed
        report.raise_on_failure()  # must not raise


class TestVerifyPropertyClaims:
    def identity_bx(self) -> BijectiveBx:
        return BijectiveBx("id", IntRangeSpace(0, 10), IntRangeSpace(0, 10),
                           to_right=lambda m: m, to_left=lambda n: n)

    def test_true_claims_verified(self):
        report = verify_property_claims(
            self.identity_bx(),
            {"correct": True, "hippocratic": True, "undoable": True},
            config=CheckConfig(trials=60))
        assert report.all_passed, report.summary()

    def test_false_claim_needs_counterexample(self):
        """Claiming 'not undoable' about an undoable bx must FAIL."""
        report = verify_property_claims(
            self.identity_bx(), {"undoable": False},
            config=CheckConfig(trials=60))
        result = report.result_for("undoable")
        assert result.failed
        assert "claimed fails, measured holds" in result.note

    def test_true_claim_about_broken_bx_fails_with_witness(self):
        broken = FunctionalBx(
            "broken", IntRangeSpace(0, 10), IntRangeSpace(0, 10),
            consistent=lambda m, n: m == n,
            fwd=lambda m, n: n, bwd=lambda m, n: n)
        report = verify_property_claims(broken, {"correct": True},
                                        config=CheckConfig(trials=60))
        result = report.result_for("correct")
        assert result.failed
        assert result.counterexample is not None

    def test_unknown_claim_skipped(self):
        report = verify_property_claims(
            self.identity_bx(), {"least change": True},
            config=CheckConfig(trials=10))
        result = report.result_for("least change")
        assert result.status is CheckStatus.SKIPPED

    def test_extra_properties_override(self):
        from repro.core.properties import LeastChange
        report = verify_property_claims(
            self.identity_bx(), {"least change": True},
            config=CheckConfig(trials=30),
            extra_properties={"least change": LeastChange(
                right_distance=lambda a, b: abs(a - b))})
        assert report.result_for("least change").passed
