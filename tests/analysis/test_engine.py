"""The analyzer engine: findings, fingerprints, baseline, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro.analysis  # noqa: F401  (registers the built-in rules)
from repro.analysis.engine import (
    Baseline,
    Finding,
    all_rules,
    load_baseline,
    load_project,
    run_rules,
    write_baseline,
)
from repro.analysis.__main__ import main


def make_tree(root: Path, files: dict[str, str]) -> Path:
    for relpath, source in files.items():
        target = root / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return root


def finding(**overrides) -> Finding:
    values = {
        "rule": "lock-discipline",
        "severity": "error",
        "path": "src/x.py",
        "line": 3,
        "message": "boom",
        "source": "self._mutex = threading.Lock()",
    }
    values.update(overrides)
    return Finding(**values)


class TestFindings:
    def test_fingerprint_ignores_line_numbers(self):
        """Edits above a baselined site must not invalidate its entry."""
        assert finding(line=3).fingerprint == finding(line=99).fingerprint

    def test_fingerprint_tracks_rule_path_and_content(self):
        base = finding().fingerprint
        assert finding(rule="async-purity").fingerprint != base
        assert finding(path="src/y.py").fingerprint != base
        assert finding(source="other = 1").fingerprint != base

    def test_registry_has_the_six_shipped_rules(self):
        names = {rule.name for rule in all_rules()}
        assert names >= {
            "lock-discipline",
            "async-purity",
            "exception-taxonomy",
            "codec-discipline",
            "protocol-drift",
            "harness-determinism",
        }

    def test_syntax_errors_become_findings(self, tmp_path):
        make_tree(tmp_path, {"broken.py": "def nope(:\n"})
        findings = run_rules(load_project([tmp_path]))
        assert [f.rule for f in findings] == ["syntax-error"]
        assert findings[0].severity == "error"


class TestBaseline:
    def test_split_suppresses_matches_and_reports_stale(self):
        hit = finding()
        miss = finding(source="different = 2")
        baseline = Baseline(
            entries=load_baseline_entries(
                [
                    entry_for(hit, "known issue"),
                    {
                        "fingerprint": "feedfeedfeedfeed",
                        "rule": "lock-discipline",
                        "path": "gone.py",
                        "reason": "site was deleted",
                    },
                ]
            )
        )
        active, suppressed, stale = baseline.split([hit, miss])
        assert active == [miss]
        assert suppressed == [hit]
        assert [entry.fingerprint for entry in stale] == ["feedfeedfeedfeed"]

    def test_loader_rejects_empty_reasons(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "fingerprint": "ab",
                            "rule": "r",
                            "path": "p",
                            "reason": "   ",
                        }
                    ]
                }
            )
        )
        with pytest.raises(ValueError, match="empty reason"):
            load_baseline(path)

    def test_loader_rejects_junk(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="entries"):
            load_baseline(path)

    def test_write_then_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        count = write_baseline(path, [finding()])
        assert count == 1
        loaded = load_baseline(path)
        assert loaded.entries[0].fingerprint == finding().fingerprint


def entry_for(found: Finding, reason: str) -> dict[str, str]:
    return {
        "fingerprint": found.fingerprint,
        "rule": found.rule,
        "path": found.path,
        "reason": reason,
    }


def load_baseline_entries(raw: list[dict[str, str]]):
    from repro.analysis.engine import BaselineEntry

    return [BaselineEntry(**item) for item in raw]


VIOLATION = 'import threading\n\nmutex = threading.Lock()\n'


class TestCLI:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        make_tree(tmp_path, {"src/fine.py": "VALUE = 1\n"})
        assert main([str(tmp_path / "src"), "--no-baseline"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_findings_exit_nonzero_with_anchors(self, tmp_path, capsys):
        make_tree(tmp_path, {"src/bad.py": VIOLATION})
        assert main([str(tmp_path / "src"), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "bad.py:3" in out
        assert "[lock-discipline]" in out

    def test_json_format_carries_fingerprints(self, tmp_path, capsys):
        make_tree(tmp_path, {"src/bad.py": VIOLATION})
        assert main([str(tmp_path / "src"), "--no-baseline", "--format=json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_scanned"] == 1
        (entry,) = payload["findings"]
        assert entry["rule"] == "lock-discipline"
        assert entry["fingerprint"]

    def test_baseline_workflow_accepts_then_blocks_new(self, tmp_path, capsys):
        """--write-baseline accepts today's findings; new ones still fail."""
        make_tree(tmp_path, {"src/bad.py": VIOLATION})
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    str(tmp_path / "src"),
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert main([str(tmp_path / "src"), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # A second, new violation is not covered by the baseline.
        make_tree(tmp_path, {"src/worse.py": VIOLATION.replace("mutex", "other")})
        assert main([str(tmp_path / "src"), "--baseline", str(baseline)]) == 1

    def test_stale_baseline_entries_are_reported_not_fatal(self, tmp_path, capsys):
        make_tree(tmp_path, {"src/fine.py": "VALUE = 1\n"})
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "entries": [
                        {
                            "fingerprint": "0123456789abcdef",
                            "rule": "lock-discipline",
                            "path": "src/gone.py",
                            "reason": "site was removed",
                        }
                    ]
                }
            )
        )
        assert main([str(tmp_path / "src"), "--baseline", str(baseline)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_rules_subset_and_unknown_rule(self, tmp_path, capsys):
        make_tree(tmp_path, {"src/bad.py": VIOLATION})
        assert (
            main(
                [
                    str(tmp_path / "src"),
                    "--no-baseline",
                    "--rules",
                    "harness-determinism",
                ]
            )
            == 0
        )
        assert main([str(tmp_path / "src"), "--rules", "nope"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "lock-discipline" in out
        assert "protocol-drift" in out

    def test_missing_path_is_a_usage_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err


class TestSelfRun:
    def test_real_tree_is_clean_under_the_committed_baseline(self, monkeypatch):
        """The acceptance gate: `python -m repro.analysis src/` exits 0.

        Runs from the repo root so relative paths (and therefore
        baseline fingerprints) match the committed baseline file.
        """
        repo_root = Path(__file__).resolve().parents[2]
        assert (repo_root / "analysis-baseline.json").is_file()
        monkeypatch.chdir(repo_root)
        assert main(["src", "--baseline", "analysis-baseline.json"]) == 0

    def test_committed_baseline_is_small_and_justified(self):
        repo_root = Path(__file__).resolve().parents[2]
        baseline = load_baseline(repo_root / "analysis-baseline.json")
        assert len(baseline.entries) <= 10
        for entry in baseline.entries:
            assert entry.reason.strip()
