"""Per-rule fixtures: every rule fires on a violation and stays quiet
on the sanctioned pattern right next to it."""

from __future__ import annotations

import re
from pathlib import Path

import repro.analysis  # noqa: F401  (registers the built-in rules)
from repro.analysis.engine import get_rule, load_project, run_rules

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def scan(tmp_path, files: dict[str, str], rule_name: str):
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    project = load_project([tmp_path])
    return run_rules(project, [get_rule(rule_name)])


class TestLockDiscipline:
    def test_fires_on_lock_constructed_elsewhere(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "store.py": (
                    "import threading\n"
                    "from threading import RLock as Big\n"
                    "a = threading.Lock()\n"
                    "b = Big()\n"
                )
            },
            "lock-discipline",
        )
        assert [f.line for f in findings] == [3, 4]

    def test_quiet_in_concurrency_and_on_mutex_alias(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "concurrency.py": (
                    "import threading\nMutex = threading.Lock\n"
                    "guard = threading.Lock()\n"
                ),
                "service.py": (
                    "from concurrency import Mutex\nmutex = Mutex()\n"
                ),
            },
            "lock-discipline",
        )
        assert findings == []

    def test_fires_on_service_call_under_a_held_mutex(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "render_cache.py": (
                    "class Cache:\n"
                    "    def render(self, identifier):\n"
                    "        with self._mutex:\n"
                    "            clock = self._clock\n"
                    "            entry = self.service.get(identifier)\n"
                    "        return entry, clock\n"
                )
            },
            "lock-discipline",
        )
        assert [f.line for f in findings] == [5]
        assert "PR-4" in findings[0].message

    def test_quiet_on_clock_capture_and_deferred_callables(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "render_cache.py": (
                    "class Cache:\n"
                    "    def render(self, identifier):\n"
                    "        with self._mutex:\n"
                    "            clock = self._clock\n"
                    "            thunk = lambda: self.service.get(identifier)\n"
                    "        entry = self.service.get(identifier)\n"
                    "        return entry, clock, thunk\n"
                    "    def write(self, entry):\n"
                    "        with self._lock.write_locked():\n"
                    "            self.backend.add(entry)\n"
                )
            },
            "lock-discipline",
        )
        # The call after release (line 6), the deferred lambda (line 5)
        # and the RW-lock write (a *call* context manager) are all fine.
        assert findings == []

    def test_quiet_outside_the_guarded_files(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "other.py": (
                    "class Thing:\n"
                    "    def run(self):\n"
                    "        with self._mutex:\n"
                    "            self.service.get('x')\n"
                )
            },
            "lock-discipline",
        )
        assert findings == []


ASYNC_VIOLATIONS = '''\
import time

class AsyncRepositoryService:
    async def get(self, identifier):
        return self.service.get(identifier)

    async def nap(self):
        time.sleep(0.1)

    async def close(self):
        self._writer.shutdown(wait=True)

    async def read_file(self, path):
        with open(path) as handle:
            return handle.read()
'''

ASYNC_SANCTIONED = '''\
class AsyncRepositoryService:
    async def get(self, identifier):
        return await self._read(lambda: self.service.get(identifier))

    async def close(self):
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._readers.shutdown)
        await loop.run_in_executor(
            None, lambda: self._writer.shutdown(wait=True))

    def sync_helper(self):
        return self.service.get("fine-outside-async")
'''


class TestAsyncPurity:
    def test_fires_on_direct_blocking_calls(self, tmp_path):
        findings = scan(
            tmp_path, {"aservice.py": ASYNC_VIOLATIONS}, "async-purity"
        )
        assert [f.line for f in findings] == [5, 8, 11, 14]

    def test_quiet_on_executor_submission(self, tmp_path):
        findings = scan(
            tmp_path, {"aservice.py": ASYNC_SANCTIONED}, "async-purity"
        )
        assert findings == []

    def test_quiet_outside_aservice(self, tmp_path):
        findings = scan(
            tmp_path, {"other.py": ASYNC_VIOLATIONS}, "async-purity"
        )
        assert findings == []


ERRORS_MODULE = '''\
class BxError(Exception):
    pass

class RepositoryError(BxError):
    pass

class StorageError(RepositoryError):
    pass

class EntryNotFound(StorageError):
    pass

class WireTimeout(StorageError):
    pass
'''


class TestExceptionTaxonomy:
    def test_fires_on_untyped_raise_in_wire_layers(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "errors.py": ERRORS_MODULE,
                "server.py": (
                    "def handle():\n"
                    "    raise ValueError('nope')\n"
                ),
                "backends/flaky.py": (
                    "def read():\n"
                    "    raise RuntimeError('nope')\n"
                ),
            },
            "exception-taxonomy",
        )
        assert {(f.path.rsplit("/", 1)[-1], f.line) for f in findings} == {
            ("server.py", 2),
            ("flaky.py", 2),
        }

    def test_taxonomy_is_parsed_from_errors_py(self, tmp_path):
        """WireTimeout is typed only because errors.py declares it."""
        findings = scan(
            tmp_path,
            {
                "errors.py": ERRORS_MODULE,
                "client.py": (
                    "def fetch():\n"
                    "    raise WireTimeout('slow')\n"
                ),
            },
            "exception-taxonomy",
        )
        assert findings == []

    def test_quiet_on_sanctioned_raises(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "errors.py": ERRORS_MODULE,
                "server.py": (
                    "def _wire_error(status, message) -> StorageError:\n"
                    "    error = StorageError(message)\n"
                    "    error.http_status = status\n"
                    "    return error\n"
                    "def handle():\n"
                    "    try:\n"
                    "        work()\n"
                    "    except EntryNotFound:\n"
                    "        raise\n"
                    "    except OSError as error:\n"
                    "        raise StorageError(str(error)) from error\n"
                    "    raise _wire_error(406, 'unacceptable')\n"
                    "if __name__ == '__main__':\n"
                    "    raise SystemExit(main())\n"
                ),
            },
            "exception-taxonomy",
        )
        assert findings == []

    def test_untyped_raise_outside_wire_layers_is_fine(self, tmp_path):
        findings = scan(
            tmp_path,
            {"models/lens.py": "def f():\n    raise ValueError('x')\n"},
            "exception-taxonomy",
        )
        assert findings == []

    def test_broad_except_needs_raise_or_justified_noqa(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "anywhere.py": (
                    "def swallow():\n"
                    "    try:\n"
                    "        work()\n"
                    "    except Exception:\n"
                    "        pass\n"
                    "def justified():\n"
                    "    try:\n"
                    "        work()\n"
                    "    except Exception:  # noqa: BLE001 - metrics only\n"
                    "        count()\n"
                    "def reraises():\n"
                    "    try:\n"
                    "        work()\n"
                    "    except Exception as error:\n"
                    "        raise Wrapped(error) from error\n"
                )
            },
            "exception-taxonomy",
        )
        assert [f.line for f in findings] == [4]

    def test_bare_and_tuple_excepts_count_as_broad(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "anywhere.py": (
                    "def a():\n"
                    "    try:\n"
                    "        work()\n"
                    "    except:\n"
                    "        pass\n"
                    "def b():\n"
                    "    try:\n"
                    "        work()\n"
                    "    except (ValueError, Exception):\n"
                    "        pass\n"
                )
            },
            "exception-taxonomy",
        )
        assert [f.line for f in findings] == [4, 9]


class TestCodecDiscipline:
    def test_fires_on_json_outside_declared_modules(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "repository/backends/exotic.py": (
                    "import json\n"
                    "def dump(entry):\n"
                    "    return json.dumps(entry.to_dict())\n"
                ),
                "repository/store2.py": "from json import loads\n",
            },
            "codec-discipline",
        )
        assert {(f.path.rsplit("/", 1)[-1], f.line) for f in findings} == {
            ("exotic.py", 3),
            ("store2.py", 1),
        }

    def test_quiet_in_declared_wire_modules_and_outside_repository(
        self, tmp_path
    ):
        findings = scan(
            tmp_path,
            {
                "repository/codec.py": (
                    "import json\n"
                    "def encode(entry):\n"
                    "    return json.dumps(entry)\n"
                ),
                "repository/server.py": (
                    "import json\npayload = json.loads('{}')\n"
                ),
                "harness/soak.py": (
                    "import json\nreport = json.dumps({})\n"
                ),
            },
            "codec-discipline",
        )
        assert findings == []


class TestHarnessDeterminism:
    def test_fires_on_nondeterministic_sources(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "harness/workloads.py": (
                    "import os\n"
                    "import random\n"
                    "import time\n"
                    "a = random.choice([1, 2])\n"
                    "b = random.Random()\n"
                    "c = random.Random(time.time())\n"
                    "d = os.urandom(8)\n"
                )
            },
            "harness-determinism",
        )
        assert [f.line for f in findings] == [4, 5, 6, 7]

    def test_quiet_on_seeded_rng_and_outside_harness(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "harness/workloads.py": (
                    "import random\n"
                    "rng = random.Random('seed:1')\n"
                    "value = rng.random()\n"
                    "sample = rng.choice([1, 2])\n"
                ),
                "repository/service.py": (
                    "import random\nnoise = random.random()\n"
                ),
            },
            "harness-determinism",
        )
        assert findings == []


# ----------------------------------------------------------------------
# Protocol drift: checked against doctored copies of the real layers.
# ----------------------------------------------------------------------


def copy_real_layers(tmp_path) -> dict[str, Path]:
    sources = {
        "service.py": REPO_SRC / "repository" / "service.py",
        "aservice.py": REPO_SRC / "repository" / "aservice.py",
        "client.py": REPO_SRC / "repository" / "client.py",
        "server.py": REPO_SRC / "repository" / "server.py",
        "backends/base.py": REPO_SRC / "repository" / "backends" / "base.py",
    }
    copies = {}
    for relpath, source in sources.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source.read_text(encoding="utf-8"), encoding="utf-8")
        copies[relpath] = target
    return copies


def drift_findings(tmp_path):
    project = load_project([tmp_path])
    return run_rules(project, [get_rule("protocol-drift")])


class TestProtocolDrift:
    def test_quiet_on_the_real_layers(self, tmp_path):
        copy_real_layers(tmp_path)
        assert drift_findings(tmp_path) == []

    def test_fires_when_a_layer_loses_an_api_method(self, tmp_path):
        """The acceptance scenario: drop an API_METHODS name from one
        layer and the rule must fail."""
        copies = copy_real_layers(tmp_path)
        doctored = copies["aservice.py"].read_text(encoding="utf-8")
        assert "async def cache_stats" in doctored
        copies["aservice.py"].write_text(
            doctored.replace("async def cache_stats", "async def cache_statz"),
            encoding="utf-8",
        )
        findings = drift_findings(tmp_path)
        assert len(findings) == 1
        assert "cache_stats" in findings[0].message
        assert "AsyncRepositoryService" in findings[0].message

    def test_fires_when_a_route_is_unwired(self, tmp_path):
        copies = copy_real_layers(tmp_path)
        doctored = copies["server.py"].read_text(encoding="utf-8")
        routed = re.sub(
            r'\(re\.compile\(r"\^/stats/query\$"\), "query_stats"\),\n',
            "",
            doctored,
        )
        assert routed != doctored
        copies["server.py"].write_text(routed, encoding="utf-8")
        findings = drift_findings(tmp_path)
        assert any(
            "query_stats" in f.message and "_ROUTES" in f.message
            for f in findings
        )

    def test_fires_when_a_handler_method_is_missing(self, tmp_path):
        copies = copy_real_layers(tmp_path)
        doctored = copies["server.py"].read_text(encoding="utf-8")
        copies["server.py"].write_text(
            doctored.replace("def _handle_counter", "def _handle_counterz"),
            encoding="utf-8",
        )
        findings = drift_findings(tmp_path)
        assert any("_handle_counter" in f.message for f in findings)

    def test_fires_on_an_unmapped_new_api_method(self, tmp_path):
        copies = copy_real_layers(tmp_path)
        doctored = copies["service.py"].read_text(encoding="utf-8")
        assert '"close",\n' in doctored
        copies["service.py"].write_text(
            doctored.replace('"close",\n', '"close",\n    "brand_new_rpc",\n'),
            encoding="utf-8",
        )
        findings = drift_findings(tmp_path)
        assert any("brand_new_rpc" in f.message for f in findings)

    def test_silent_without_service_py(self, tmp_path):
        (tmp_path / "other.py").write_text("VALUE = 1\n", encoding="utf-8")
        assert drift_findings(tmp_path) == []


class TestRetryDiscipline:
    def test_fires_on_sleep_inside_while_loop(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "client_helper.py": (
                    "import time\n"
                    "def wait_for_server(probe):\n"
                    "    while not probe():\n"
                    "        time.sleep(0.05)\n"
                )
            },
            "retry-discipline",
        )
        assert [f.line for f in findings] == [4]
        assert "RetryPolicy" in findings[0].message

    def test_fires_on_sleep_alias_inside_for_loop(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "poller.py": (
                    "from time import sleep as snooze\n"
                    "def drain(jobs):\n"
                    "    for job in jobs:\n"
                    "        snooze(0.1)\n"
                    "        job.poke()\n"
                )
            },
            "retry-discipline",
        )
        assert [f.line for f in findings] == [4]

    def test_fires_on_range_attempt_loop_swallowing_errors(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "uploader.py": (
                    "def upload(send):\n"
                    "    for _attempt in range(3):\n"
                    "        try:\n"
                    "            return send()\n"
                    "        except ConnectionError:\n"
                    "            continue\n"
                )
            },
            "retry-discipline",
        )
        assert [f.line for f in findings] == [2]
        assert "ad-hoc retry" in findings[0].message

    def test_quiet_on_sanctioned_patterns(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "worker.py": (
                    "import time\n"
                    "def pace(policy, operation):\n"
                    "    time.sleep(0.5)\n"  # off-loop sleep: fine
                    "    return policy.call(operation)\n"
                    "def fanout(items):\n"
                    "    for item in items:\n"  # plain data loop
                    "        item.run()\n"
                    "def retry_range_that_reraises(send):\n"
                    "    for _ in range(3):\n"
                    "        try:\n"
                    "            return send()\n"
                    "        except ConnectionError:\n"
                    "            raise\n"  # re-raises: not a swallow
                ),
                "maker.py": (
                    # An injectable-sleep default inside a loop-building
                    # function is deferred, not an inline loop sleep.
                    "import time\n"
                    "def build_policies(count):\n"
                    "    policies = []\n"
                    "    for _ in range(count):\n"
                    "        policies.append(lambda: time.sleep(1.0))\n"
                    "    return policies\n"
                ),
            },
            "retry-discipline",
        )
        assert findings == []

    def test_resilience_module_is_exempt(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "resilience.py": (
                    "import time\n"
                    "def spin():\n"
                    "    while True:\n"
                    "        time.sleep(0.01)\n"
                )
            },
            "retry-discipline",
        )
        assert findings == []

    def test_real_tree_is_clean(self):
        project = load_project([REPO_SRC])
        findings = run_rules(project, [get_rule("retry-discipline")])
        assert findings == []


class TestTxnDiscipline:
    BASE = (
        "class StorageBackend:\n"
        "    def write_group(self):\n"
        "        yield self\n"
    )
    SQLITE = (
        "class SQLiteBackend:\n"
        "    def write_group(self):\n"
        "        yield self\n"
    )

    def test_fires_exactly_once_when_a_durable_layer_lags(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "backends/base.py": self.BASE,
                "backends/sqlite.py": self.SQLITE,
                "backends/file.py": (
                    "class FileBackend:\n"
                    "    def add(self, entry):\n"
                    "        pass\n"
                ),
            },
            "txn-discipline",
        )
        assert len(findings) == 1
        assert findings[0].path.endswith("backends/file.py")
        assert findings[0].line == 1
        assert "lockstep" in findings[0].message

    def test_fires_on_group_api_missing_from_base(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "backends/base.py": (
                    "class StorageBackend:\n"
                    "    def add(self, entry):\n"
                    "        pass\n"
                ),
                "backends/shiny.py": (
                    "class ShinyBackend:\n"
                    "    def begin_group(self):\n"
                    "        pass\n"
                    "    def commit_group(self):\n"
                    "        pass\n"
                ),
            },
            "txn-discipline",
        )
        assert [f.line for f in findings] == [2, 4]
        assert all("base.py" in f.message for f in findings)

    def test_quiet_when_all_layers_share_the_seam(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                "backends/base.py": self.BASE,
                "backends/sqlite.py": self.SQLITE,
                "backends/file.py": (
                    "class FileBackend:\n"
                    "    def write_group(self):\n"
                    "        yield self\n"
                ),
            },
            "txn-discipline",
        )
        assert findings == []

    def test_quiet_on_partial_trees_and_outside_backends(self, tmp_path):
        findings = scan(
            tmp_path,
            {
                # Only one durable layer under scan: no parity to check,
                # and its write_group matches the base declaration.
                "backends/base.py": self.BASE,
                "backends/sqlite.py": self.SQLITE,
                # write_group outside backends/ is not this rule's
                # business (the service facade holds one too).
                "service.py": (
                    "class RepositoryService:\n"
                    "    def write_group(self):\n"
                    "        yield self\n"
                ),
            },
            "txn-discipline",
        )
        assert findings == []

    def test_real_tree_is_clean(self):
        project = load_project([REPO_SRC])
        findings = run_rules(project, [get_rule("txn-discipline")])
        assert findings == []
