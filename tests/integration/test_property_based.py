"""Hypothesis property tests over the flagship artefacts.

The law harness samples from the library's own seeded spaces; these
tests add an *independent* generator (hypothesis) so the invariants are
not hostage to one sampling strategy.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalogue.composers import (
    composers_bx,
    make_composer,
    pairs_of_model,
)
from repro.catalogue.composers.models import DATES, NAMES, NATIONALITIES
from repro.catalogue.strings import ComposerLinesLens
from repro.repository.wiki_sync import WikiSyncLens, normalise_entry
from tests.repository.test_entry import minimal_entry

# ----------------------------------------------------------------------
# Strategies.
# ----------------------------------------------------------------------

composers = st.builds(
    make_composer,
    st.sampled_from(NAMES),
    st.sampled_from(DATES),
    st.sampled_from(NATIONALITIES))

models = st.frozensets(composers, max_size=6)

pairs = st.tuples(st.sampled_from(NAMES), st.sampled_from(NATIONALITIES))

listings = st.lists(pairs, max_size=8).map(tuple)

source_lines = st.lists(
    st.builds(lambda n, d, t: f"{n}, {d}, {t}",
              st.sampled_from(NAMES), st.sampled_from(DATES),
              st.sampled_from(NATIONALITIES)),
    max_size=6).map(tuple)

view_lines = st.lists(
    st.builds(lambda n, t: f"{n}, {t}",
              st.sampled_from(NAMES), st.sampled_from(NATIONALITIES)),
    max_size=6).map(tuple)


class TestComposersInvariants:
    @given(models, listings)
    @settings(max_examples=300, deadline=None)
    def test_fwd_establishes_consistency(self, model, listing):
        bx = composers_bx()
        assert bx.consistent(model, bx.fwd(model, listing))

    @given(models, listings)
    @settings(max_examples=300, deadline=None)
    def test_bwd_establishes_consistency(self, model, listing):
        bx = composers_bx()
        assert bx.consistent(bx.bwd(model, listing), listing)

    @given(models, listings)
    @settings(max_examples=200, deadline=None)
    def test_fwd_is_idempotent(self, model, listing):
        bx = composers_bx()
        once = bx.fwd(model, listing)
        assert bx.fwd(model, once) == once

    @given(models, listings)
    @settings(max_examples=200, deadline=None)
    def test_bwd_is_idempotent(self, model, listing):
        bx = composers_bx()
        once = bx.bwd(model, listing)
        assert bx.bwd(once, listing) == once

    @given(models, listings)
    @settings(max_examples=200, deadline=None)
    def test_fwd_preserves_matched_prefix_order(self, model, listing):
        """Survivors keep their relative order (stable deletion)."""
        bx = composers_bx()
        result = bx.fwd(model, listing)
        authoritative = pairs_of_model(model)
        survivors = [pair for pair in listing if pair in authoritative]
        assert list(result[:len(survivors)]) == survivors

    @given(models, listings)
    @settings(max_examples=200, deadline=None)
    def test_fwd_appended_block_sorted_and_duplicate_free(self, model,
                                                          listing):
        bx = composers_bx()
        result = bx.fwd(model, listing)
        authoritative = pairs_of_model(model)
        survivors = [pair for pair in listing if pair in authoritative]
        block = list(result[len(survivors):])
        assert block == sorted(block)
        assert len(set(block)) == len(block)

    @given(models, listings)
    @settings(max_examples=200, deadline=None)
    def test_bwd_never_invents_dates(self, model, listing):
        """Every composer in the repaired model either existed or has
        the unknown-dates placeholder."""
        bx = composers_bx()
        repaired = bx.bwd(model, listing)
        for composer in repaired:
            assert composer in model or composer.dates == "????-????"

    @given(models)
    @settings(max_examples=150, deadline=None)
    def test_round_trip_from_authoritative_left(self, model):
        """fwd then bwd from the same authority is stable on the left."""
        bx = composers_bx()
        listing = bx.fwd(model, ())
        assert bx.bwd(model, listing) == model


class TestStringLensInvariants:
    @given(source_lines)
    @settings(max_examples=250, deadline=None)
    def test_getput(self, source):
        lens = ComposerLinesLens()
        assert lens.put(lens.get(source), source) == source

    @given(view_lines, source_lines)
    @settings(max_examples=250, deadline=None)
    def test_putget(self, view, source):
        lens = ComposerLinesLens()
        assert lens.get(lens.put(view, source)) == view

    @given(view_lines)
    @settings(max_examples=150, deadline=None)
    def test_createget(self, view):
        lens = ComposerLinesLens()
        assert lens.get(lens.create(view)) == view

    @given(view_lines, source_lines)
    @settings(max_examples=150, deadline=None)
    def test_put_never_loses_claimable_dates(self, view, source):
        """Dates only become ???? when the key count genuinely exceeds
        the source's supply for that key."""
        lens = ComposerLinesLens()
        merged = lens.put(view, source)
        supply: dict = {}
        for line in source:
            name, _dates, nat = [p.strip() for p in line.split(",")]
            supply[(name, nat)] = supply.get((name, nat), 0) + 1
        for line in merged:
            name, dates, nat = [p.strip() for p in line.split(",")]
            if dates == "????-????":
                continue
            assert supply.get((name, nat), 0) > 0
            supply[(name, nat)] -= 1


overview_texts = st.text(
    alphabet="abcdefg .", min_size=1, max_size=60).filter(
    lambda s: s.strip(" ."))


class TestWikiSyncInvariants:
    @given(overview_texts, overview_texts)
    @settings(max_examples=200, deadline=None)
    def test_round_trip_with_arbitrary_free_text(self, overview,
                                                 discussion):
        lens = WikiSyncLens()
        entry = normalise_entry(minimal_entry(
            overview=overview + ".", discussion=discussion + "."))
        assert lens.put(lens.get(entry), entry) == entry

    @given(st.lists(st.sampled_from(
        ["Ann", "Bob", "Cyd", "Dee"]), min_size=1, max_size=4,
        unique=True))
    @settings(max_examples=100, deadline=None)
    def test_author_lists_round_trip(self, authors):
        lens = WikiSyncLens()
        entry = normalise_entry(minimal_entry(authors=tuple(authors)))
        assert lens.put(lens.get(entry), entry).authors == tuple(authors)
