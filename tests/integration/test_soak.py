"""Short soak runs as integration tests: the chaos harness end to end.

These are the PR-tier smoke's little siblings — a couple of seconds of
mixed Zipfian traffic against both stack shapes with the full fault
schedule, asserting zero invariant violations.  The real durations live
in ``benchmarks/bench_soak.py`` (PR tier) and the nightly CI job; here
the point is that the harness itself keeps working under plain pytest.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.soak import (
    BrownoutFault,
    FileCrashFault,
    OverloadFault,
    ReplicaDivergenceFault,
    ReplicaRecoverFault,
    ServerBounceFault,
    ShardKillFault,
    SoakConfig,
    SoakRunner,
    build_soak_stack,
    main,
)
from repro.harness.workloads import CorpusSpec


def short_config(seconds: float = 1.5, *, seed: int = 7) -> SoakConfig:
    return SoakConfig(
        seconds=seconds,
        corpus=CorpusSpec(count=400, seed=seed),
        preload=200,
        seed=seed,
    )


@pytest.fixture
def direct_stack(tmp_path):
    stack = build_soak_stack(tmp_path / "direct", shards=2, http=False)
    yield stack
    stack.close()


@pytest.fixture
def http_stack(tmp_path):
    stack = build_soak_stack(tmp_path / "http", shards=2, http=True)
    yield stack
    stack.close()


class TestDirectSoak:
    def test_full_schedule_zero_violations(self, direct_stack):
        runner = SoakRunner(direct_stack, short_config())
        report = runner.run()
        assert report.ok, report.violations
        assert report.fault_names() == [
            "shard-kill-0", "replica-diverge-0", "file-crash",
            "brownout-0", "replica-recover-0", "ingest-burst-0"]
        assert report.ops_total > 100
        assert report.invariant_checks == 7  # one per fault + final
        assert report.entries_final > report.preload

    def test_fault_observability(self, direct_stack):
        """Each injector-backed fault is observable at its seam: the
        kill latched (>= 1 firing), the crash exactly once."""
        runner = SoakRunner(direct_stack, short_config(seed=8))
        report = runner.run()
        assert report.ok, report.violations
        by_name = {record.name: record for record in report.faults}
        assert by_name["shard-kill-0"].fired >= 1
        assert by_name["file-crash"].fired == 1
        assert by_name["replica-diverge-0"].details[
            "payloads_replaced"] >= 1
        assert by_name["brownout-0"].fired >= 1
        assert by_name["replica-recover-0"].details["reintegrations"] >= 1
        assert by_name["ingest-burst-0"].details["lag_before_repair"] >= 1
        assert by_name["ingest-burst-0"].details["async_applied"] >= 1

    def test_report_round_trips_and_extra_info_is_json_safe(
            self, direct_stack):
        report = SoakRunner(direct_stack, short_config(seed=9)).run()
        decoded = json.loads(report.to_json())
        assert decoded["ok"] is True
        assert decoded["stack"] == "direct"
        info = json.loads(json.dumps(report.extra_info()))
        assert info["violations"] == []
        assert {"get", "get_many", "query", "write"} == set(
            info["latencies"])

    def test_single_fault_schedule(self, direct_stack):
        """The runner takes an explicit schedule — one fault type can
        be soaked in isolation."""
        report = SoakRunner(direct_stack, short_config(0.8),
                            faults=[ShardKillFault(1)]).run()
        assert report.ok, report.violations
        assert report.fault_names() == ["shard-kill-1"]


class TestHttpSoak:
    def test_full_schedule_with_server_bounce(self, http_stack):
        runner = SoakRunner(http_stack, short_config(2.0))
        report = runner.run()
        assert report.ok, report.violations
        assert report.fault_names() == [
            "shard-kill-0", "replica-diverge-0", "file-crash",
            "brownout-0", "replica-recover-0", "ingest-burst-0",
            "overload", "server-bounce"]
        assert report.stack == "http"
        bounce = report.faults[-1]
        assert bounce.details["probe_attempts"] >= 1
        assert bounce.details["port"] == http_stack.server.port

    def test_expected_failures_only_inside_fault_windows(self, http_stack):
        """Traffic errors during an outage are expected (counted, not
        violations); outside the windows every op must succeed."""
        report = SoakRunner(http_stack, short_config(1.5, seed=11)).run()
        assert report.ok, report.violations
        # The latched shard kill makes some window ops fail.
        assert report.expected_failures >= 1


class TestFaultUnits:
    """Each fault class against a fresh stack, outside the traffic loop."""

    def test_shard_kill_inject_and_recover(self, direct_stack):
        runner = SoakRunner(direct_stack, short_config())
        runner.preload()
        fault = ShardKillFault(0)
        fault.inject(runner)
        assert direct_stack.injector.armed("shard0.primary")
        details = fault.recover(runner)
        assert not direct_stack.injector.armed("shard0.primary")
        assert details["fired"] >= 1

    def test_replica_divergence_repaired(self, direct_stack):
        runner = SoakRunner(direct_stack, short_config())
        runner.preload()
        fault = ReplicaDivergenceFault(0)
        injected = fault.inject(runner)
        replica = direct_stack.replicas[0]
        assert replica.get(injected["identifier"]).overview.startswith(
            "DIVERGED")
        details = fault.recover(runner)
        assert details["payloads_replaced"] >= 1

    def test_file_crash_counted_once_and_repaired(self, direct_stack):
        runner = SoakRunner(direct_stack, short_config())
        runner.preload()
        fault = FileCrashFault()
        injected = fault.inject(runner)
        assert injected["fired"] == 1
        assert not direct_stack.file_replica.has(injected["identifier"])
        fault.recover(runner)
        assert direct_stack.file_replica.has(injected["identifier"])

    def test_brownout_fails_fast_then_recovers(self, direct_stack):
        runner = SoakRunner(direct_stack, short_config())
        runner.preload()
        fault = BrownoutFault(0)
        injected = fault.inject(runner)
        # The probe failed faster than the injected delay.
        assert injected["probe_ms"] < \
            direct_stack.slow_primaries[0].delay * 1e3
        details = fault.recover(runner)
        assert details["fired"] >= 1
        assert not direct_stack.injector.armed("shard0.brownout")

    def test_replica_recover_repairs_before_rejoin(self, direct_stack):
        runner = SoakRunner(direct_stack, short_config())
        runner.preload()
        fault = ReplicaRecoverFault(0)
        injected = fault.inject(runner)
        assert injected["suspended"] == 1
        pair = direct_stack.replicated[0]
        assert pair.suspended_replicas() == (0,)
        details = fault.recover(runner)
        assert details["reintegrations"] == 1
        assert pair.suspended_replicas() == ()

    def test_overload_sheds_with_retry_after(self, http_stack):
        runner = SoakRunner(http_stack, short_config())
        runner.preload()
        fault = OverloadFault()
        injected = fault.inject(runner)
        assert injected["shed_total"] >= 1
        assert injected["client_sheds"] >= 1
        details = fault.recover(runner)
        assert details["restored_limit"] == http_stack.server.max_inflight

    def test_server_bounce_same_port(self, http_stack):
        runner = SoakRunner(http_stack, short_config())
        runner.preload()
        port = http_stack.server.port
        fault = ServerBounceFault()
        fault.inject(runner)
        assert http_stack.server.port == port
        fault.recover(runner)
        assert runner.stack.target.entry_count() == len(runner.ids)


class TestCli:
    def test_main_writes_report_and_log(self, tmp_path, capsys):
        json_path = tmp_path / "soak.json"
        log_path = tmp_path / "soak.log"
        code = main(["--seconds", "1.0", "--entries", "300",
                     "--seed", "7", "--json", str(json_path),
                     "--log", str(log_path)])
        assert code == 0
        report = json.loads(json_path.read_text())
        assert report["ok"] is True
        assert report["violations"] == []
        assert len(report["faults"]) == 6
        assert "injecting shard-kill-0" in log_path.read_text()
        assert "soak OK" in capsys.readouterr().out

    def test_main_http_tier(self, tmp_path):
        code = main(["--seconds", "1.2", "--entries", "300",
                     "--http", "--root", str(tmp_path / "root")])
        assert code == 0
