"""E13: the same example across formalisms agrees on common scenarios.

The repository's purpose is "that meaningful comparisons between
formalisms will be easier to make" (§1).  Here the comparison is run
mechanically: Composers as (a) the symmetric state-based bx, (b) the
Boomerang-style string lens's induced bx, and (c) the remembering
symmetric lens's induced state-based bx, on shared scenarios expressed
in each formalism's model language.
"""

from __future__ import annotations

import pytest

from repro.catalogue.composers import (
    RememberingComposersLens,
    composers_bx,
    make_composer,
    pair_of,
)
from repro.catalogue.strings import ComposerLinesLens


def pairs_of_view_lines(lines: tuple) -> list[tuple[str, str]]:
    return [tuple(part.strip() for part in line.split(","))
            for line in lines]


def source_lines_of_model(model: frozenset) -> tuple:
    return tuple(f"{c.name}, {c.dates}, {c.nationality}"
                 for c in sorted(model, key=lambda c: c.as_tuple()))


BRITTEN = make_composer("Britten", "1913-1976", "English")
ELGAR = make_composer("Elgar", "1857-1934", "English")


class TestStateVsStringOnDeletion:
    """Deleting a composer's entry deletes the composer in both
    formalisms, and both lose the dates on re-add."""

    def test_state_based(self):
        bx = composers_bx()
        model = frozenset({BRITTEN, ELGAR})
        shrunk = bx.bwd(model, (("Elgar", "English"),))
        assert shrunk == frozenset({ELGAR})

    def test_string_lens(self):
        lens = ComposerLinesLens()
        source = source_lines_of_model(frozenset({BRITTEN, ELGAR}))
        merged = lens.put(("Elgar, English",), source)
        assert merged == ("Elgar, 1857-1934, English",)

    def test_both_lose_dates_on_delete_then_readd(self):
        bx = composers_bx()
        lens = ComposerLinesLens()
        model = frozenset({BRITTEN})
        source = source_lines_of_model(model)

        state_result = bx.bwd(bx.bwd(model, ()), (("Britten", "English"),))
        string_result = lens.put(("Britten, English",),
                                 lens.put((), source))

        (state_composer,) = state_result
        (string_line,) = string_result
        assert state_composer.dates == "????-????"
        assert "????-????" in string_line

    def test_remembering_lens_disagrees_by_design(self):
        """The complement formalism is the one that *can* restore."""
        lens = RememberingComposersLens()
        model = frozenset({BRITTEN})
        listing, complement = lens.putr(model, lens.missing())
        _gone, complement = lens.putl((), complement)
        restored, _complement = lens.putl(listing, complement)
        assert restored == model  # dates preserved, unlike the others


class TestAdditionAgreement:
    """Adding a new pair creates an unknown-dates composer everywhere."""

    def test_state_based(self):
        bx = composers_bx()
        grown = bx.bwd(frozenset({ELGAR}),
                       (("Elgar", "English"), ("Purcell", "Welsh")))
        added = next(c for c in grown if c.name == "Purcell")
        assert added.dates == "????-????"

    def test_string_lens(self):
        lens = ComposerLinesLens()
        merged = lens.put(("Elgar, English", "Purcell, Welsh"),
                          ("Elgar, 1857-1934, English",))
        assert merged[1] == "Purcell, ????-????, Welsh"

    def test_resulting_pairs_identical(self):
        bx = composers_bx()
        lens = ComposerLinesLens()
        model = frozenset({ELGAR})
        view = (("Elgar", "English"), ("Purcell", "Welsh"))

        state_pairs = sorted(pair_of(c) for c in bx.bwd(model, view))
        string_pairs = sorted(pairs_of_view_lines(
            lens.get(lens.put(tuple(f"{n}, {nat}" for n, nat in view),
                              source_lines_of_model(model)))))
        assert state_pairs == string_pairs


class TestForwardAgreement:
    def test_fwd_and_get_produce_the_same_pairs(self):
        bx = composers_bx()
        lens = ComposerLinesLens()
        model = frozenset({BRITTEN, ELGAR})
        state_pairs = set(bx.fwd(model, ()))
        string_pairs = set(pairs_of_view_lines(
            lens.get(source_lines_of_model(model))))
        assert state_pairs == string_pairs

    def test_induced_bx_from_lens_is_correct_and_hippocratic(self):
        from repro.core.laws import CheckConfig, check_bx_properties
        induced = ComposerLinesLens().to_bx()
        report = check_bx_properties(
            induced, config=CheckConfig(trials=150, seed=37))
        assert report.result_for("correct").passed
        assert report.result_for("hippocratic").passed
