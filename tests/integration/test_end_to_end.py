"""End-to-end lifecycle: populate, curate, sync to the wiki, search,
cite — the repository used the way the paper imagines it."""

from __future__ import annotations

import pytest

from repro.catalogue import builtin_catalogue, populate_store
from repro.repository.citation import cite_entry
from repro.repository.curation import CuratedRepository, Role, User
from repro.repository.search import SearchIndex
from repro.repository.store import FileStore
from repro.repository.template import EntryType
from repro.repository.versioning import Version
from repro.repository.wiki_sync import WikiSyncLens, normalise_entry


@pytest.fixture
def repo(tmp_path) -> CuratedRepository:
    store = FileStore(tmp_path / "bx-repo")
    populate_store(store)
    return CuratedRepository(store)


class TestLifecycle:
    def test_full_curation_cycle(self, repo):
        """Comment -> revise -> approve, with history intact."""
        bob = User("Bob", Role.MEMBER)
        rex = User("Rex", Role.REVIEWER)
        cleo = User("Cleo", Role.CURATOR)

        repo.comment(bob, "composers", "2014-03-28",
                     "Clarify duplicate handling?")
        current = repo.get("composers")
        assert current.comments[-1].author == "Bob"

        revised = current.with_version(Version(0, 2))
        repo.revise(cleo, revised)
        approved = repo.approve(rex, "composers")

        assert approved.version == Version(1, 0)
        assert repo.review_status("composers") == "reviewed"
        # The full lineage is still addressable (E11):
        assert repo.store.versions("composers") == [
            Version(0, 1), Version(0, 2), Version(1, 0)]
        original = repo.get("composers", Version(0, 1))
        assert original.reviewers == ()

    def test_citations_pin_versions(self, repo):
        rex = User("Rex", Role.REVIEWER)
        before = cite_entry(repo.get("composers"))
        repo.approve(rex, "composers")
        after = cite_entry(repo.get("composers"))
        assert before != after
        assert "version 0.1" in before
        assert "version 1.0" in after

    def test_search_over_populated_store(self, repo):
        index = SearchIndex().build(repo.store)
        hits = index.search("composers nationality")
        assert hits[0].identifier in {"composers", "composers-string"}
        sketches = index.by_type(EntryType.SKETCH)
        assert [e.identifier for e in sketches] == ["model-code-sync"]
        not_undoable = index.by_property("undoable", holds=False)
        assert {e.identifier for e in not_undoable} >= {
            "composers", "uml2rdbms"}

    def test_wiki_round_trip_for_every_entry(self, repo):
        """E12 over the whole repository: every stored entry survives
        rendering to wikidot and parsing back."""
        lens = WikiSyncLens()
        for identifier in repo.identifiers():
            entry = normalise_entry(repo.get(identifier))
            page = lens.get(entry)
            assert lens.put(page, entry) == entry, identifier

    def test_wiki_edit_then_sync_updates_store(self, repo):
        """The §5.4 workflow: edit the wiki page, put back, persist."""
        lens = WikiSyncLens()
        entry = normalise_entry(repo.get("dirtree"))
        page = lens.get(entry).replace(
            "A directory tree and its sorted path listing.",
            "A file tree and its sorted path listing.")
        merged = lens.put(page, entry)
        repo.store.replace_latest(merged.with_version(entry.version))
        assert "file tree" in repo.get("dirtree").overview

    def test_store_survives_reopen(self, repo, tmp_path):
        reopened = FileStore(tmp_path / "bx-repo")
        assert reopened.identifiers() == repo.store.identifiers()
        assert reopened.get("composers").title == "COMPOSERS"


class TestCatalogueEntryPages:
    def test_markdown_rendering_of_all_entries(self, repo):
        from repro.repository.export import render_markdown
        for example in builtin_catalogue():
            text = render_markdown(example.entry())
            assert text.startswith(f"# {example.entry().title}")
