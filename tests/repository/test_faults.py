"""The fault-injection seam: FaultInjector, FlakyBackend, the
FileBackend crash hook, and how the scaling layer reacts to each.

The soak harness's chaos schedule is only trustworthy if the seam
itself is precise: a one-shot fault fires *exactly once*, an unarmed
wrapper is bit-identical to its inner backend, and every injected
failure is classified the way the composites expect (infra-class, so
replication fails over instead of propagating).
"""

from __future__ import annotations

import pytest

from repro.catalogue.composers import composers_entry
from repro.core.errors import BxError
from repro.repository import (
    FaultInjector,
    FileBackend,
    FlakyBackend,
    InjectedFault,
    MemoryBackend,
    ReplicatedBackend,
)
class TestFaultInjector:
    def test_one_shot_fires_exactly_once(self):
        injector = FaultInjector()
        injector.arm("p", mode="once")
        with pytest.raises(InjectedFault):
            injector.trip("p")
        # Disarmed by the first firing: every later trip is a no-op.
        injector.trip("p")
        injector.trip("p")
        assert injector.fired("p") == 1

    def test_latched_fires_until_healed(self):
        injector = FaultInjector()
        injector.arm("p", mode="latched")
        for _ in range(3):
            with pytest.raises(InjectedFault):
                injector.trip("p")
        injector.heal("p")
        injector.trip("p")
        assert injector.fired("p") == 3

    def test_injected_fault_is_infra_class_not_bx(self):
        """ReplicatedBackend fails over on non-BxError exceptions; an
        injected fault must land in that class or chaos runs would
        surface outages as domain errors."""
        assert issubclass(InjectedFault, ConnectionError)
        assert not issubclass(InjectedFault, BxError)
        injector = FaultInjector()
        injector.arm("p", mode="once")
        with pytest.raises(ConnectionError) as outcome:
            injector.trip("p")
        assert outcome.value.point == "p"

    def test_hook_scopes_sub_points(self):
        injector = FaultInjector()
        fire = injector.hook("file.crash")
        fire("pre-rename")  # unarmed: no-op
        injector.arm("file.crash", mode="once")
        with pytest.raises(InjectedFault):
            fire("pre-rename")
        assert injector.fired("file.crash") == 1

    def test_fired_counts_snapshot(self):
        injector = FaultInjector()
        injector.arm("a", mode="latched")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                injector.trip("a")
        assert injector.fired_counts() == {"a": 2}


class TestFlakyBackend:
    def test_unarmed_is_transparent(self):
        entry = composers_entry()
        flaky = FlakyBackend(MemoryBackend(), FaultInjector(), "p")
        flaky.add(entry)
        assert flaky.get(entry.identifier) == entry
        assert flaky.identifiers() == [entry.identifier]
        assert flaky.has(entry.identifier)
        assert flaky.entry_count() == 1

    def test_kill_blocks_reads_and_writes(self):
        entry = composers_entry()
        flaky = FlakyBackend(MemoryBackend(), FaultInjector(), "p")
        flaky.add(entry)
        flaky.kill()
        with pytest.raises(InjectedFault):
            flaky.get(entry.identifier)
        with pytest.raises(InjectedFault):
            flaky.replace_latest(entry)
        flaky.revive()
        assert flaky.get(entry.identifier) == entry

    def test_cache_stats_survive_the_outage(self):
        """Introspection stays up during a kill: composites poll
        ``cache_stats`` for reporting and must not trip the fault."""
        flaky = FlakyBackend(MemoryBackend(), FaultInjector(), "p")
        flaky.kill()
        assert isinstance(flaky.cache_stats(), dict)

    def test_kill_fails_before_mutation(self):
        """A write to a killed backend must not half-apply: the trip
        happens before delegation, so the inner store is untouched."""
        entry = composers_entry()
        inner = MemoryBackend()
        flaky = FlakyBackend(inner, FaultInjector(), "p")
        flaky.kill()
        with pytest.raises(InjectedFault):
            flaky.add(entry)
        assert not inner.has(entry.identifier)


class TestReplicationUnderFaults:
    def test_read_fails_over_when_primary_killed(self):
        entry = composers_entry()
        primary = FlakyBackend(MemoryBackend(), FaultInjector(), "p")
        replica = MemoryBackend()
        replicated = ReplicatedBackend(primary, [replica])
        replicated.add(entry)
        primary.kill()
        assert replicated.get(entry.identifier) == entry

    def test_replica_crash_is_counted_and_repaired(self):
        """The file-crash fault end to end at the backend layer: the
        mirror write dies in the pre-rename window, the composite write
        still succeeds, and anti-entropy repairs the replica."""
        entry = composers_entry()
        injector = FaultInjector()
        primary = MemoryBackend()
        replica = MemoryBackend()
        flaky_replica = FlakyBackend(replica, injector, "replica")
        replicated = ReplicatedBackend(primary, [flaky_replica])
        injector.arm("replica", mode="once")
        replicated.add(entry)  # primary-first: succeeds
        assert replicated.replica_write_failures == 1
        assert injector.fired("replica") == 1
        assert not replica.has(entry.identifier)
        report = replicated.anti_entropy()
        assert report.entries_copied == 1
        assert replica.get(entry.identifier) == entry


class TestFileBackendCrashHook:
    def test_unhooked_backend_writes_normally(self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        assert backend.fault_hook is None
        entry = composers_entry()
        backend.add(entry)
        assert backend.get(entry.identifier) == entry

    def test_crash_window_leaves_only_ignorable_debris(self, tmp_path):
        """A crash between counter bump and rename: the counter has
        advanced, the snapshot is absent, the ``*.json.tmp`` fragment
        is invisible to every read path — and the next (retried) write
        through a fresh backend lands cleanly."""
        root = tmp_path / "repo"
        backend = FileBackend(root)
        injector = FaultInjector()
        backend.fault_hook = injector.hook("crash")
        injector.arm("crash", mode="once")
        entry = composers_entry()
        counter_before = backend.change_counter()
        with pytest.raises(InjectedFault):
            backend.add(entry)
        assert injector.fired("crash") == 1
        assert backend.change_counter() == counter_before + 1
        debris = list(root.rglob("*.json.tmp"))
        assert len(debris) == 1
        # A fresh backend over the same tree (the restarted process).
        recovered = FileBackend(root)
        assert not recovered.has(entry.identifier)
        assert recovered.identifiers() == []
        recovered.add(entry)  # the retry
        assert recovered.get(entry.identifier) == entry

    def test_hook_fires_once_per_armed_fault(self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        injector = FaultInjector()
        backend.fault_hook = injector.hook("crash")
        entry = composers_entry()
        backend.add(entry)  # unarmed: writes fine, nothing fires
        assert injector.fired("crash") == 0
        injector.arm("crash", mode="once")
        import dataclasses
        from repro.repository.versioning import Version
        bumped = dataclasses.replace(
            entry, version=Version(entry.version.major,
                                   entry.version.minor + 1))
        with pytest.raises(InjectedFault):
            backend.add_version(bumped)
        backend.add_version(bumped)  # retry succeeds, hook spent
        assert injector.fired("crash") == 1
        assert backend.versions(entry.identifier)[-1] == bumped.version
