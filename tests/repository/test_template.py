"""E1: the §3 template — fields, order, optionality (tests/repository)."""

from __future__ import annotations

import pytest

from repro.repository.template import (
    MUTUALLY_EXCLUSIVE_TYPES,
    TEMPLATE,
    EntryType,
    field_names,
    field_spec,
)

#: The paper's §3 field list, in the paper's order; '?' marks optional.
PAPER_FIELDS = [
    ("Title", True),
    ("Version", True),
    ("Type", True),
    ("Overview", True),
    ("Models", True),
    ("Consistency", True),
    ("Consistency Restoration", True),
    ("Properties", False),
    ("Variants", False),
    ("Discussion", True),
    ("References", False),
    ("Authors", True),
    ("Reviewers", False),
    ("Comments", True),
    ("Artefacts", False),
]


class TestTemplateMatchesPaper:
    def test_field_names_and_order(self):
        assert [(spec.name, spec.required) for spec in TEMPLATE] == \
            PAPER_FIELDS

    def test_field_count(self):
        assert len(TEMPLATE) == 15

    def test_optional_fields_display_question_mark(self):
        assert field_spec("Properties").display_name == "Properties?"
        assert field_spec("Title").display_name == "Title"

    def test_every_field_documented(self):
        for spec in TEMPLATE:
            assert spec.description, f"{spec.name} lacks its §3 gloss"

    def test_every_field_maps_to_an_entry_attribute(self):
        from repro.repository.entry import ExampleEntry
        import dataclasses
        attributes = {f.name for f in dataclasses.fields(ExampleEntry)}
        for spec in TEMPLATE:
            assert spec.attribute in attributes, spec.name


class TestFieldLookup:
    def test_by_name(self):
        assert field_spec("Models").attribute == "models"

    def test_unknown_name_lists_template(self):
        with pytest.raises(KeyError, match="Title"):
            field_spec("Nonsense")

    def test_field_names_helper(self):
        assert field_names()[0] == "Title"
        required = field_names(required_only=True)
        assert "Properties" not in required
        assert "Comments" in required


class TestEntryTypes:
    def test_paper_classes_present(self):
        values = {t.value for t in EntryType}
        assert {"PRECISE", "INDUSTRIAL", "SKETCH", "BENCHMARK"} == values

    def test_precise_sketch_mutually_exclusive(self):
        assert frozenset({EntryType.PRECISE, EntryType.SKETCH}) in \
            MUTUALLY_EXCLUSIVE_TYPES

    def test_industrial_combines_with_either(self):
        for other in (EntryType.PRECISE, EntryType.SKETCH):
            pair = frozenset({EntryType.INDUSTRIAL, other})
            assert pair not in MUTUALLY_EXCLUSIVE_TYPES
