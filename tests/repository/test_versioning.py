"""Unit tests for versioning (repro.repository.versioning)."""

from __future__ import annotations

import pytest

from repro.core.errors import VersioningError
from repro.repository.versioning import Version, VersionHistory


class TestVersion:
    def test_parse(self):
        assert Version.parse("0.1") == Version(0, 1)
        assert Version.parse(" 2.10 ") == Version(2, 10)

    @pytest.mark.parametrize("junk", ["", "1", "1.2.3", "a.b", "1.x"])
    def test_parse_rejects_junk(self, junk):
        with pytest.raises(VersioningError):
            Version.parse(junk)

    def test_ordering(self):
        assert Version(0, 9) < Version(0, 10) < Version(1, 0)

    def test_is_reviewed_boundary(self):
        """'0.x for unreviewed examples': review starts at 1.0."""
        assert not Version(0, 99).is_reviewed
        assert Version(1, 0).is_reviewed
        assert Version(2, 3).is_reviewed

    def test_next_steps(self):
        assert Version(0, 1).next_minor() == Version(0, 2)
        assert Version(0, 5).next_major() == Version(1, 0)

    def test_str(self):
        assert str(Version(1, 0)) == "1.0"


class TestVersionHistory:
    def test_append_and_latest(self):
        history = VersionHistory()
        history.append(Version(0, 1), "first")
        history.append(Version(0, 2), "second")
        assert history.latest == "second"
        assert history.latest_version == Version(0, 2)
        assert len(history) == 2

    def test_versions_must_increase(self):
        history = VersionHistory()
        history.append(Version(0, 2), "x")
        with pytest.raises(VersioningError, match="linear sequence"):
            history.append(Version(0, 2), "again")
        with pytest.raises(VersioningError):
            history.append(Version(0, 1), "backwards")

    def test_old_versions_stay_available(self):
        """§5.2: 'keep old versions ... so old references can still be
        followed'."""
        history = VersionHistory()
        history.append(Version(0, 1), "draft")
        history.append(Version(1, 0), "approved")
        assert history.get(Version(0, 1)) == "draft"
        assert history.versions() == [Version(0, 1), Version(1, 0)]

    def test_get_unknown_version(self):
        history = VersionHistory()
        history.append(Version(0, 1), "draft")
        with pytest.raises(VersioningError, match="0.1"):
            history.get(Version(0, 9))

    def test_empty_history(self):
        with pytest.raises(VersioningError):
            VersionHistory().latest

    def test_iteration(self):
        history = VersionHistory()
        history.append(Version(0, 1), "a")
        assert list(history) == [(Version(0, 1), "a")]
