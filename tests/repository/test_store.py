"""E11: versioned storage with stable identifiers (repro.repository.store)."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import DuplicateEntry, EntryNotFound, StorageError
from repro.repository.service import (
    API_METHODS,
    RepositoryAPI,
    RepositoryService,
)
from repro.repository.store import FileStore, MemoryStore, RepositoryStore
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    return FileStore(tmp_path / "repo")


class TestStoreInterface:
    def test_add_and_get(self, store):
        entry = minimal_entry()
        store.add(entry)
        assert store.get("demo-example") == entry
        assert store.identifiers() == ["demo-example"]
        assert store.has("demo-example")
        assert store.entry_count() == 1

    def test_duplicate_add_rejected(self, store):
        store.add(minimal_entry())
        with pytest.raises(DuplicateEntry):
            store.add(minimal_entry())

    def test_unknown_identifier(self, store):
        with pytest.raises(EntryNotFound):
            store.get("nope")
        with pytest.raises(EntryNotFound):
            store.versions("nope")

    def test_versioned_retrieval(self, store):
        """Old references can still be followed."""
        store.add(minimal_entry())
        store.add_version(minimal_entry(version=Version(0, 2),
                                        overview="Better."))
        assert store.get("demo-example").overview == "Better."
        old = store.get("demo-example", Version(0, 1))
        assert old.overview == "A demo."
        assert store.versions("demo-example") == \
            [Version(0, 1), Version(0, 2)]
        assert store.latest_version("demo-example") == Version(0, 2)

    def test_unknown_version(self, store):
        store.add(minimal_entry())
        with pytest.raises(EntryNotFound):
            store.get("demo-example", Version(0, 9))

    def test_add_version_must_increase(self, store):
        store.add(minimal_entry(version=Version(0, 2)))
        with pytest.raises((StorageError, Exception)):
            store.add_version(minimal_entry(version=Version(0, 1)))

    def test_add_version_requires_existing_entry(self, store):
        with pytest.raises(EntryNotFound):
            store.add_version(minimal_entry())

    def test_replace_latest_keeps_version(self, store):
        store.add(minimal_entry())
        store.replace_latest(minimal_entry(overview="Patched."))
        assert store.get("demo-example").overview == "Patched."
        assert store.versions("demo-example") == [Version(0, 1)]

    def test_replace_latest_rejects_version_change(self, store):
        store.add(minimal_entry())
        with pytest.raises(StorageError):
            store.replace_latest(minimal_entry(version=Version(0, 2)))


class TestRepositoryAPIProtocol:
    """The compat shims carry the full RepositoryAPI surface.

    ``RepositoryStore``/``MemoryStore``/``FileStore`` are the historical
    names out-of-tree code subclasses; if the protocol extraction (or a
    later refactor of the base class) dropped a method, these names
    would silently stop honouring the service contract.  API_METHODS is
    the single list both the protocol and this test check against."""

    def test_api_methods_mirror_the_protocol_exactly(self):
        declared = {name for name in vars(RepositoryAPI)
                    if not name.startswith("_")}
        assert declared == set(API_METHODS)

    def test_store_shims_carry_every_api_method(self, tmp_path):
        instances = [MemoryStore(), FileStore(tmp_path / "repo")]
        for instance in instances:
            for name in API_METHODS:
                assert callable(getattr(instance, name)), \
                    f"{type(instance).__name__}.{name} missing"
            assert isinstance(instance, RepositoryAPI)

    def test_repository_store_interface_declares_the_surface(self):
        for name in API_METHODS:
            assert hasattr(RepositoryStore, name), \
                f"RepositoryStore.{name} missing"

    def test_service_facade_satisfies_the_protocol(self):
        service = RepositoryService()
        assert isinstance(service, RepositoryAPI)
        for name in API_METHODS:
            assert callable(getattr(service, name))

    def test_shim_query_goes_through_execute_query(self):
        """The hoisted query() convenience reaches the shim classes:
        the single retrieval surface works on a bare store too."""
        store = MemoryStore()
        store.add(minimal_entry())
        result = store.query("demo")
        assert result.identifiers == ["demo-example"]
        assert result.total == 1


class TestFileStoreSpecifics:
    def test_layout_on_disk(self, tmp_path):
        store = FileStore(tmp_path / "repo")
        store.add(minimal_entry())
        path = tmp_path / "repo" / "entries" / "demo-example" / "0.1.json"
        assert path.is_file()
        data = json.loads(path.read_text())
        assert data["title"] == "DEMO EXAMPLE"

    def test_reopen_preserves_contents(self, tmp_path):
        FileStore(tmp_path / "repo").add(minimal_entry())
        reopened = FileStore(tmp_path / "repo")
        assert reopened.get("demo-example").title == "DEMO EXAMPLE"

    def test_no_temp_files_left(self, tmp_path):
        store = FileStore(tmp_path / "repo")
        store.add(minimal_entry())
        store.add_version(minimal_entry(version=Version(0, 2)))
        leftovers = list((tmp_path / "repo").rglob("*.tmp"))
        assert not leftovers

    def test_mismatched_file_contents_detected(self, tmp_path):
        store = FileStore(tmp_path / "repo")
        store.add(minimal_entry())
        path = tmp_path / "repo" / "entries" / "demo-example" / "0.1.json"
        data = json.loads(path.read_text())
        data["title"] = "SOMETHING ELSE"
        path.write_text(json.dumps(data))
        # A fresh store (decode memo empty) must detect the mismatch
        # when it actually parses the tampered file.
        reopened = FileStore(tmp_path / "repo")
        with pytest.raises(StorageError, match="something-else"):
            reopened.get("demo-example")

    def test_json_is_stable_sorted(self, tmp_path):
        store = FileStore(tmp_path / "repo")
        store.add(minimal_entry())
        path = tmp_path / "repo" / "entries" / "demo-example" / "0.1.json"
        first = path.read_text()
        store.replace_latest(minimal_entry())
        assert path.read_text() == first
