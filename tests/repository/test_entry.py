"""Unit tests for example entries (repro.repository.entry)."""

from __future__ import annotations

import pytest

from repro.core.errors import TemplateError
from repro.repository.entry import (
    Artefact,
    Comment,
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    Reference,
    RestorationSpec,
    Variant,
    slugify,
)
from repro.repository.template import EntryType
from repro.repository.versioning import Version


def minimal_entry(**overrides) -> ExampleEntry:
    fields = dict(
        title="DEMO EXAMPLE",
        version=Version(0, 1),
        types=(EntryType.PRECISE,),
        overview="A demo.",
        models=(ModelDescription("M", "Left model."),
                ModelDescription("N", "Right model.")),
        consistency="They agree.",
        restoration=RestorationSpec(forward="Copy.", backward="Copy back."),
        discussion="For testing.",
        authors=("Ann",),
        properties=(PropertyClaim("correct"),),
    )
    fields.update(overrides)
    return ExampleEntry(**fields)


class TestSlugify:
    def test_examples(self):
        assert slugify("COMPOSERS") == "composers"
        assert slugify("UML to RDBMS!") == "uml-to-rdbms"
        assert slugify("  A  B  ") == "a-b"

    def test_empty_rejected(self):
        with pytest.raises(TemplateError):
            slugify("!!!")


class TestEntryBasics:
    def test_identifier_derived_from_title(self):
        assert minimal_entry().identifier == "demo-example"

    def test_frozen(self):
        with pytest.raises(AttributeError):
            minimal_entry().title = "X"  # type: ignore[misc]

    def test_claimed_properties(self):
        entry = minimal_entry(properties=(
            PropertyClaim("correct", True),
            PropertyClaim("undoable", False)))
        assert entry.claimed_properties() == {"correct": True,
                                              "undoable": False}


class TestEvolutionHelpers:
    def test_with_version(self):
        assert minimal_entry().with_version(Version(0, 2)).version == \
            Version(0, 2)

    def test_with_comment_appends(self):
        entry = minimal_entry().with_comment(
            Comment("Bob", "2014-03-28", "Nice."))
        assert entry.comments[-1].author == "Bob"
        assert not minimal_entry().comments

    def test_with_reviewer_idempotent(self):
        entry = minimal_entry().with_reviewer("Rex")
        assert entry.with_reviewer("Rex").reviewers == ("Rex",)

    def test_with_artefact(self):
        entry = minimal_entry().with_artefact(
            Artefact("code", "code", "pkg.mod"))
        assert entry.artefacts[-1].locator == "pkg.mod"


class TestPropertyClaimDisplay:
    def test_positive(self):
        assert PropertyClaim("correct").display() == "Correct"

    def test_negative_renders_not(self):
        assert PropertyClaim("undoable", holds=False).display() == \
            "Not undoable"

    def test_multiword(self):
        assert PropertyClaim("simply matching").display() == \
            "Simply matching"


class TestSerialisation:
    def full_entry(self) -> ExampleEntry:
        return minimal_entry(
            variants=(Variant("v1", "Choice one."),),
            references=(Reference("Some paper.", doi="10.1/x",
                                  note="origin"),),
            reviewers=("Rex",),
            version=Version(1, 0),
            comments=(Comment("Bob", "2014-03-28", "Nice."),),
            artefacts=(Artefact("code", "code", "pkg.mod", "the bx"),),
        )

    def test_round_trip(self):
        entry = self.full_entry()
        assert ExampleEntry.from_dict(entry.to_dict()) == entry

    def test_dict_is_json_ready(self):
        import json
        text = json.dumps(self.full_entry().to_dict())
        assert "DEMO EXAMPLE" in text

    def test_missing_key_reported(self):
        data = self.full_entry().to_dict()
        del data["consistency"]
        with pytest.raises(TemplateError, match="consistency"):
            ExampleEntry.from_dict(data)

    def test_optional_fields_default_empty(self):
        data = minimal_entry().to_dict()
        for key in ("variants", "references", "reviewers", "comments",
                    "artefacts"):
            del data[key]
        entry = ExampleEntry.from_dict(data)
        assert entry.variants == ()
        assert entry.comments == ()

    def test_restoration_combined_round_trip(self):
        entry = minimal_entry(
            restoration=RestorationSpec(combined="Symmetric repair."))
        back = ExampleEntry.from_dict(entry.to_dict())
        assert back.restoration.combined == "Symmetric repair."
        assert not back.restoration.is_empty()
