"""The event-driven render cache: exact invalidation, fail-safe
persistence, and byte-identical output through the cached consumers.

Mirrors the index-snapshot tests (``TestPersistentServiceIndex``): the
render cache uses the same change-counter stamping scheme, so the same
three properties are pinned — restored without re-rendering, stale
snapshots discarded, memory backends never persisted.
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import StorageError, WikiSyncError
from repro.repository.backends import FileBackend, MemoryBackend
from repro.repository.export import (
    render_markdown,
    render_repository_markdown,
    render_wikidot,
)
from repro.repository.query import Q
from repro.repository.render_cache import RenderCache
from repro.repository.service import RepositoryService
from repro.repository.versioning import Version
from repro.repository.wiki_sync import render_wiki_pages
from tests.repository.test_entry import minimal_entry


def entry_batch(count: int):
    return [minimal_entry(title=f"ENTRY {index}",
                          overview=f"Unique token tok{index}.")
            for index in range(count)]


@pytest.fixture()
def service():
    built = RepositoryService(MemoryBackend())
    built.add_many(entry_batch(3))
    return built


class TestRendering:
    def test_pages_match_the_uncached_renderer(self, service):
        cache = RenderCache(service)
        assert render_wiki_pages(service, cache=cache) == \
            render_wiki_pages(service)
        assert render_repository_markdown(service, cache=cache) == \
            render_repository_markdown(service)

    def test_query_slices_match(self, service):
        cache = RenderCache(service)
        query = Q.text("tok1")
        assert render_wiki_pages(service, query, cache=cache) == \
            render_wiki_pages(service, query)
        assert render_repository_markdown(service, query=query,
                                          cache=cache) == \
            render_repository_markdown(service, query=query)

    def test_single_page_accessors(self, service):
        cache = RenderCache(service)
        entry = service.get("entry-1")
        assert cache.wiki_page("entry-1") == render_wikidot(entry)
        assert cache.markdown_fragment("entry-1") == \
            render_markdown(entry)

    def test_cache_bound_to_another_store_is_rejected(self, service):
        other = RepositoryService(MemoryBackend())
        cache = RenderCache(other)
        with pytest.raises(WikiSyncError, match="different store"):
            render_wiki_pages(service, cache=cache)
        with pytest.raises(StorageError, match="different store"):
            render_repository_markdown(service, cache=cache)


class TestValidator:
    """The per-identifier freshness validator behind wiki ETags."""

    def test_moves_only_with_the_written_identifier(self, service):
        cache = RenderCache(service)
        before_0 = cache.validator("entry-0")
        before_1 = cache.validator("entry-1")
        service.replace_latest(minimal_entry(title="ENTRY 1",
                                             overview="Patched."))
        # Entry 1's validator moved; entry 0's ETag stays revalidatable
        # while the corpus churns elsewhere.
        assert cache.validator("entry-1") != before_1
        assert cache.validator("entry-0") == before_0

    def test_stable_across_reads(self, service):
        cache = RenderCache(service)
        first = cache.validator("entry-0")
        cache.wiki_page("entry-0")
        assert cache.validator("entry-0") == first

    def test_epoch_pins_the_validator_to_one_cache_instance(self, service):
        first = RenderCache(service)
        value = first.validator("entry-0")
        first.close()
        second = RenderCache(service)
        # Same identifier, same (zero) eviction clock — but a validator
        # minted before a restart must never confirm a page after it.
        assert second.validator("entry-0") != value
        second.close()


class TestInvalidation:
    """Events must evict exactly the touched identifier's pages."""

    def fill(self, service):
        cache = RenderCache(service)
        cache.wiki_pages()
        cache.markdown_fragments()
        return cache

    def assert_only_rerenders(self, service, cache, identifier,
                              monkeypatch):
        """A warm pass may render ``identifier`` and nothing else."""
        from repro.repository import render_cache as module
        original = module.render_wikidot

        def guarded(entry):
            assert entry.identifier == identifier, \
                f"untouched {entry.identifier!r} was re-rendered"
            return original(entry)

        monkeypatch.setattr(module, "render_wikidot", guarded)
        before = cache.cache_stats()["misses"]
        pages = cache.wiki_pages()
        assert cache.cache_stats()["misses"] == before + 1
        assert pages == render_wiki_pages(service)

    def test_add_evicts_only_the_new_identifier(self, service,
                                                monkeypatch):
        cache = self.fill(service)
        service.add(minimal_entry(title="LATECOMER"))
        self.assert_only_rerenders(service, cache, "latecomer",
                                   monkeypatch)

    def test_add_version_evicts_only_the_touched_identifier(
            self, service, monkeypatch):
        cache = self.fill(service)
        service.add_version(minimal_entry(title="ENTRY 1",
                                          version=Version(0, 2),
                                          overview="Sharper."))
        self.assert_only_rerenders(service, cache, "entry-1",
                                   monkeypatch)
        assert "Sharper." in cache.wiki_page("entry-1")

    def test_replace_latest_evicts_only_the_touched_identifier(
            self, service, monkeypatch):
        cache = self.fill(service)
        service.replace_latest(minimal_entry(title="ENTRY 2",
                                             overview="Quixotic."))
        self.assert_only_rerenders(service, cache, "entry-2",
                                   monkeypatch)
        assert "Quixotic." in cache.wiki_page("entry-2")

    def test_markdown_side_is_evicted_too(self, service):
        cache = self.fill(service)
        service.replace_latest(minimal_entry(title="ENTRY 0",
                                             overview="Rewritten."))
        assert "Rewritten." in cache.markdown_fragment("entry-0")
        document = render_repository_markdown(service, cache=cache)
        assert document == render_repository_markdown(service)

    def test_write_racing_a_query_render_is_not_cached_stale(
            self, service):
        """A write landing between the query fetch and the store must
        win: the stale render is dropped, not cached as fresh."""
        cache = RenderCache(service)

        class RacingService:
            """The cache's store, with a write sneaking in after the
            query snapshot is taken but before the render is stored."""

            def __getattr__(self, name):
                return getattr(service, name)

            def execute_query(self, plan, stats=None):
                result = service.execute_query(plan, stats)
                service.replace_latest(
                    minimal_entry(title="ENTRY 1",
                                  overview="Racing rewrite."))
                return result  # carries the pre-write snapshot

        cache.service = RacingService()
        stale_pages = cache.wiki_pages(Q.text("tok1"))
        assert "Racing rewrite." not in stale_pages["entry-1"]  # raced
        cache.service = service
        # The stale render must not have been cached: a fresh call
        # re-renders and sees the write.
        assert "Racing rewrite." in cache.wiki_page("entry-1")

    def test_detached_cache_stops_tracking(self, service):
        cache = self.fill(service)
        cache.close()  # unsubscribes
        service.replace_latest(minimal_entry(title="ENTRY 0",
                                             overview="Unseen."))
        assert "Unseen." not in cache.wiki_page("entry-0")  # stale by design


class TestPersistence:
    """Counter-stamped snapshots, exactly like the search index's."""

    def durable_service(self, tmp_path):
        service = RepositoryService(FileBackend(tmp_path / "repo"))
        if not service.identifiers():
            service.add_many(entry_batch(3))
        return service

    def test_snapshot_restored_without_rerendering(self, tmp_path,
                                                   monkeypatch):
        snapshot = tmp_path / "render.json"
        first = self.durable_service(tmp_path)
        cache = RenderCache(first, path=snapshot)
        expected = cache.wiki_pages()
        cache.close()  # saves
        assert snapshot.is_file()

        # "New process": fresh service, fresh cache — rendering again
        # would defeat the snapshot, so forbid it outright.
        second = RepositoryService(FileBackend(tmp_path / "repo"))
        restored = RenderCache(second, path=snapshot)
        from repro.repository import render_cache as module
        monkeypatch.setattr(
            module, "render_wikidot",
            lambda entry: pytest.fail("page was re-rendered"))
        assert restored.wiki_pages() == expected

    def test_stale_snapshot_discarded_on_counter_mismatch(self,
                                                          tmp_path):
        snapshot = tmp_path / "render.json"
        first = self.durable_service(tmp_path)
        cache = RenderCache(first, path=snapshot)
        cache.wiki_pages()
        cache.close()

        # A write lands behind the snapshot's back (other process).
        behind = FileBackend(tmp_path / "repo")
        behind.replace_latest(minimal_entry(title="ENTRY 0",
                                            overview="Sneaked."))

        second = RepositoryService(FileBackend(tmp_path / "repo"))
        restored = RenderCache(second, path=snapshot)
        assert restored.cache_stats()["wiki_pages"] == 0  # started cold
        assert "Sneaked." in restored.wiki_page("entry-0")

    def test_corrupt_or_wrong_format_snapshot_discarded(self, tmp_path):
        service = self.durable_service(tmp_path)
        bad = tmp_path / "render.json"
        bad.write_text("{ not json")
        assert RenderCache(service,
                           path=bad).cache_stats()["wiki_pages"] == 0
        counter = service.change_counter()
        bad.write_text(json.dumps({"format": 99,
                                   "change_counter": counter,
                                   "wiki": {}, "markdown": {}}))
        assert RenderCache(service,
                           path=bad).cache_stats()["wiki_pages"] == 0

    def test_memory_backends_never_persist(self, tmp_path):
        service = RepositoryService(MemoryBackend())
        service.add_many(entry_batch(2))
        cache = RenderCache(service, path=tmp_path / "render.json")
        cache.wiki_pages()
        assert not cache.save()  # no durable counter -> no snapshot
        cache.close()
        assert not (tmp_path / "render.json").exists()


class TestInstrumentation:
    def test_hit_miss_invalidation_counters(self, service):
        cache = RenderCache(service)
        cache.wiki_pages()  # 3 misses
        cache.wiki_pages()  # 3 hits
        service.replace_latest(minimal_entry(title="ENTRY 0",
                                             overview="Patched."))
        cache.wiki_pages()  # 2 hits + 1 miss
        stats = cache.cache_stats()
        assert stats["misses"] == 4
        assert stats["hits"] == 5
        assert stats["invalidations"] == 1
        assert stats["wiki_pages"] == 3

    def test_service_cache_stats_shape(self, service):
        service.get("entry-0")
        service.get("entry-0")
        stats = service.cache_stats()
        assert stats["entry_cache"]["hits"] >= 1
        assert {"misses", "evictions", "currsize",
                "maxsize"} <= set(stats["entry_cache"])

    def test_service_cache_stats_include_backend_caches(self, tmp_path):
        service = RepositoryService(FileBackend(tmp_path / "repo"))
        service.add(minimal_entry())
        service.invalidate()  # force the next get through the backend
        service.get("demo-example")
        stats = service.cache_stats()
        assert "decode_memo" in stats
        assert "listing" in stats
        service.close()
