"""The resilience layer: deadlines, budgets, breakers, probes — and the
end-to-end behaviours they buy the serving stack (fast typed timeouts,
load shedding, repair-before-rejoin reintegration)."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.core.errors import (
    BackendUnavailableError,
    CircuitOpenError,
    DeadlineExceeded,
    EntryNotFound,
)
from repro.repository import (
    CircuitBreaker,
    Deadline,
    FaultInjector,
    FlakyBackend,
    HealthProbe,
    HTTPBackend,
    MemoryBackend,
    ReplicatedBackend,
    RepositoryServer,
    RepositoryService,
    RetryBudget,
    RetryPolicy,
    ShardedBackend,
    SlowBackend,
    current_deadline,
    deadline_scope,
    shard_index,
)
from repro.repository.aservice import AsyncRepositoryService
from tests.repository.test_entry import minimal_entry


class FakeClock:
    """A steppable monotonic clock for breaker/deadline tests."""

    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Deadline.
# ----------------------------------------------------------------------

class TestDeadline:
    def test_after_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == 0.0

    def test_check_raises_only_after_expiry(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        deadline.check("warm-up")  # fine
        clock.advance(2.0)
        with pytest.raises(DeadlineExceeded, match="warm-up"):
            deadline.check("warm-up")

    def test_cap_bounds_timeouts_with_an_epsilon_floor(self):
        clock = FakeClock()
        deadline = Deadline.after(0.5, clock=clock)
        assert deadline.cap(30.0) == pytest.approx(0.5)
        assert deadline.cap(0.2) == pytest.approx(0.2)
        assert deadline.cap(None) == pytest.approx(0.5)
        clock.advance(10.0)
        assert deadline.cap(30.0) == 0.001  # floored, never zero/negative

    def test_scope_nests_and_restores(self):
        assert current_deadline() is None
        outer = Deadline.after(5.0)
        inner = Deadline.after(1.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer
            with deadline_scope(None):  # deliberate shed
                assert current_deadline() is None
        assert current_deadline() is None


# ----------------------------------------------------------------------
# RetryBudget / RetryPolicy.
# ----------------------------------------------------------------------

class TestRetryBudget:
    def test_spend_drains_and_successes_refill(self):
        budget = RetryBudget(capacity=2.0, refill_rate=0.5)
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()  # drained
        budget.record_success()
        assert budget.tokens == pytest.approx(0.5)
        assert not budget.try_spend()  # still under one whole token
        budget.record_success()
        assert budget.try_spend()

    def test_refill_caps_at_capacity(self):
        budget = RetryBudget(capacity=1.0, refill_rate=5.0)
        budget.record_success()
        assert budget.tokens == 1.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RetryBudget(capacity=0)


class PinnedRandom:
    """An rng whose uniform() always returns the interval's high end."""

    def uniform(self, low, high):
        return high


class TestRetryPolicy:
    def policy(self, **overrides):
        slept = []
        defaults = dict(
            max_attempts=4, base_delay=0.1, max_delay=10.0,
            rng=PinnedRandom(), sleep=slept.append)
        defaults.update(overrides)
        return RetryPolicy(**defaults), slept

    def test_decorrelated_jitter_schedule(self):
        policy, slept = self.policy()
        calls = [0]

        def flaky():
            calls[0] += 1
            raise ConnectionError("down")

        with pytest.raises(ConnectionError):
            policy.call(flaky)
        assert calls[0] == 4
        # Pinned to the high end: 0.1*3, then 0.3*3, then 0.9*3.
        assert slept == pytest.approx([0.3, 0.9, 2.7])
        assert policy.retries == 3

    def test_max_delay_caps_the_schedule(self):
        policy, slept = self.policy(max_delay=0.5)
        with pytest.raises(ConnectionError):
            policy.call(self.always_down)
        assert max(slept) == 0.5

    @staticmethod
    def always_down():
        raise ConnectionError("down")

    def test_success_after_failures_returns_the_result(self):
        policy, slept = self.policy()
        outcomes = iter([ConnectionError("x"), ConnectionError("x"), "ok"])

        def sometimes():
            outcome = next(outcomes)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        assert policy.call(sometimes) == "ok"
        assert len(slept) == 2

    def test_classify_veto_fails_immediately(self):
        policy, slept = self.policy()

        def semantic():
            raise EntryNotFound("nope")

        with pytest.raises(EntryNotFound):
            policy.call(semantic)
        assert slept == []  # semantic errors are never retried

    def test_budget_veto_stops_retries(self):
        budget = RetryBudget(capacity=1.0, refill_rate=0.0)
        policy, slept = self.policy(budget=budget)
        with pytest.raises(ConnectionError):
            policy.call(self.always_down)
        assert len(slept) == 1  # one retry spent the only token

    def test_first_attempt_success_refills_the_budget(self):
        budget = RetryBudget(capacity=10.0, refill_rate=0.25)
        policy, _ = self.policy(budget=budget)
        before = budget.tokens
        assert policy.call(lambda: "fine") == "fine"
        assert budget.tokens == before  # already at capacity: capped
        budget._tokens = 1.0  # drain, then verify the deposit
        policy.call(lambda: "fine")
        assert budget.tokens == pytest.approx(1.25)

    def test_retry_after_hint_overrides_computed_delay(self):
        policy, slept = self.policy()

        def shedding():
            raise BackendUnavailableError("shed", retry_after=1.5)

        with pytest.raises(BackendUnavailableError):
            policy.call(shedding)
        assert slept == pytest.approx([1.5, 1.5, 1.5])

    def test_deadline_vetoes_a_retry_that_cannot_fit(self):
        clock = FakeClock()
        deadline = Deadline.after(0.2, clock=clock)
        policy, slept = self.policy()  # first delay would be 0.3
        with pytest.raises(ConnectionError):
            policy.call(self.always_down, deadline=deadline)
        assert slept == []  # 0.3s delay > 0.2s remaining: fail now

    def test_ambient_deadline_is_picked_up(self):
        clock = FakeClock()
        policy, slept = self.policy()
        with deadline_scope(Deadline.after(0.2, clock=clock)):
            with pytest.raises(ConnectionError):
                policy.call(self.always_down)
        assert slept == []

    def test_deadline_exceeded_is_never_retried(self):
        policy, slept = self.policy()
        calls = [0]

        def out_of_time():
            calls[0] += 1
            raise DeadlineExceeded("too late")

        with pytest.raises(DeadlineExceeded):
            policy.call(out_of_time)
        assert calls[0] == 1 and slept == []

    def test_on_retry_observability_hook(self):
        policy, _ = self.policy()
        seen = []
        with pytest.raises(ConnectionError):
            policy.call(self.always_down,
                        on_retry=lambda error, attempt: seen.append(attempt))
        assert seen == [1, 2, 3]

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


# ----------------------------------------------------------------------
# CircuitBreaker: the full state machine.
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def breaker(self, **overrides):
        clock = FakeClock()
        defaults = dict(failure_threshold=3, reset_timeout=5.0, clock=clock)
        defaults.update(overrides)
        return CircuitBreaker(**defaults), clock

    def test_closed_until_threshold_consecutive_failures(self):
        breaker, _ = self.breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_total == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self.breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_refuses_and_guard_raises_with_retry_after(self):
        breaker, _ = self.breaker(name="replica-1")
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        with pytest.raises(CircuitOpenError, match="replica-1") as excinfo:
            breaker.guard()
        assert excinfo.value.retry_after == 5.0

    def test_half_open_admits_exactly_one_trial(self):
        breaker, clock = self.breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # the trial
        assert not breaker.allow()   # everyone else waits for its outcome

    def test_trial_success_closes(self):
        closed = []
        breaker, clock = self.breaker(on_close=closed.append)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert closed == [breaker]

    def test_trial_failure_reopens_and_restarts_the_timer(self):
        breaker, clock = self.breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()  # failed trial: straight back open
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_total == 2
        clock.advance(4.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_on_open_hook_fires_once_per_trip(self):
        opened = []
        breaker, _ = self.breaker(on_open=opened.append)
        for _ in range(3):
            breaker.record_failure()
        breaker.record_failure()  # already open: no second event
        assert opened == [breaker]

    def test_force_open_quarantines(self):
        breaker, _ = self.breaker()
        breaker.force_open()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_total == 1
        breaker.force_open()  # idempotent while open
        assert breaker.opened_total == 1

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


# ----------------------------------------------------------------------
# HealthProbe.
# ----------------------------------------------------------------------

class TestHealthProbe:
    def test_check_now_tracks_health_and_fires_on_recover_once(self):
        healthy = [False]
        recoveries = []
        probe = HealthProbe(lambda: healthy[0],
                            on_recover=lambda: recoveries.append(1))
        assert not probe.check_now()
        assert not probe.healthy
        healthy[0] = True
        assert probe.check_now()
        assert probe.healthy
        assert probe.check_now()  # still healthy: no second recovery
        assert recoveries == [1]

    def test_raising_check_counts_as_unhealthy(self):
        def boom():
            raise ConnectionError("down")

        probe = HealthProbe(boom)
        assert not probe.check_now()
        assert not probe.healthy

    def test_background_thread_starts_and_stops(self):
        ticks = []
        probe = HealthProbe(lambda: ticks.append(1) or True, interval=0.01)
        probe.start()
        probe.start()  # idempotent
        deadline = Deadline.after(5.0)
        policy = RetryPolicy(max_attempts=100, base_delay=0.01,
                             max_delay=0.02)

        def saw_a_tick():
            if not ticks:
                raise ConnectionError("no tick yet")
            return True

        assert policy.call(saw_a_tick, deadline=deadline)
        probe.stop()
        assert probe._thread is None


# ----------------------------------------------------------------------
# Typed transport errors + deadline propagation, end to end.
# ----------------------------------------------------------------------

class TestTypedTransportErrors:
    def test_connection_refused_surfaces_as_backend_unavailable(self):
        client = HTTPBackend("http://127.0.0.1:1/",
                             retry_policy=RetryPolicy(max_attempts=1))
        with pytest.raises(BackendUnavailableError):
            client.get("anything")
        client.close()

    def test_bounced_server_raises_typed_error_then_recovers(self):
        """Regression: mid-bounce failures must be typed
        BackendUnavailableError, never raw ConnectionRefusedError or
        socket.timeout escaping the transport."""
        service = RepositoryService(MemoryBackend())
        entry = minimal_entry()
        service.add(entry)
        server = RepositoryServer(service).start()
        port = server.port
        client = HTTPBackend(server.url,
                             retry_policy=RetryPolicy(max_attempts=1))
        assert client.get(entry.identifier) == entry
        server.stop()  # the bounce window
        with pytest.raises(BackendUnavailableError) as excinfo:
            client.get(entry.identifier)
        assert not type(excinfo.value) is ConnectionRefusedError
        server.requested_port = port
        server.start()
        riding = HTTPBackend(server.url)  # default policy rides back in
        assert riding.get(entry.identifier) == entry
        riding.close()
        client.close()
        server.stop()
        service.close()


class TestDeadlinePropagation:
    def test_client_deadline_beats_injected_server_latency(self):
        """A 0.25s client deadline against a 2s-slow backend must fail
        fast with DeadlineExceeded — not ride the 30s socket default."""
        injector = FaultInjector()
        slow = SlowBackend(MemoryBackend(), injector, "backend.slow",
                           delay=2.0)
        service = RepositoryService(slow)
        entry = minimal_entry()
        service.add(entry)
        server = RepositoryServer(service).start()
        client = HTTPBackend(server.url)
        try:
            slow.brownout()
            started = time.perf_counter()
            with deadline_scope(Deadline.after(0.25)):
                with pytest.raises(DeadlineExceeded):
                    client.get(entry.identifier)
            elapsed = time.perf_counter() - started
            assert elapsed < 1.5, (
                f"deadline took {elapsed:.2f}s to fire — the client "
                f"hung past its budget")
        finally:
            slow.restore()
            client.close()
            server.stop()
            service.close()

    def test_expired_deadline_fails_before_any_network_io(self):
        clock = FakeClock()
        stale = Deadline.after(0.5, clock=clock)
        clock.advance(1.0)
        client = HTTPBackend("http://127.0.0.1:1/")
        with deadline_scope(stale):
            with pytest.raises(DeadlineExceeded):
                client.get("anything")
        client.close()

    def test_deadline_header_rides_the_wire(self):
        service = RepositoryService(MemoryBackend())
        entry = minimal_entry()
        service.add(entry)
        server = RepositoryServer(service).start()
        client = HTTPBackend(server.url)
        try:
            with deadline_scope(Deadline.after(5.0)):
                assert client.get(entry.identifier) == entry
        finally:
            client.close()
            server.stop()
            service.close()


# ----------------------------------------------------------------------
# Per-shard deadlines.
# ----------------------------------------------------------------------

class TestShardedDeadlines:
    def build(self, *, shard_timeout=0.15, delay=1.0):
        injector = FaultInjector()
        slows = [SlowBackend(MemoryBackend(), injector, f"shard{i}.slow",
                             delay=delay)
                 for i in range(2)]
        sharded = ShardedBackend(slows, shard_timeout=shard_timeout)
        return sharded, slows

    def seed_both_shards(self, sharded):
        by_shard = {}
        index = 0
        while len(by_shard) < 2:
            entry = minimal_entry(title=f"SEED {index}")
            shard = shard_index(entry.identifier, 2)
            if shard not in by_shard:
                sharded.add(entry)
                by_shard[shard] = entry
            index += 1
        return by_shard

    def test_browned_out_shard_fails_its_keyrange_fast(self):
        sharded, slows = self.build()
        by_shard = self.seed_both_shards(sharded)
        slows[0].brownout()
        try:
            started = time.perf_counter()
            with pytest.raises(DeadlineExceeded):
                sharded.get(by_shard[0].identifier)
            elapsed = time.perf_counter() - started
            assert elapsed < slows[0].delay, (
                f"deadline fired in {elapsed:.2f}s — slower than the "
                f"brownout itself")
            # The healthy shard is unaffected.
            assert sharded.get(by_shard[1].identifier) == by_shard[1]
        finally:
            slows[0].restore()
            time.sleep(slows[0].delay)  # drain the abandoned straggler
            sharded.close()

    def test_no_shard_timeout_means_no_deadline_machinery(self):
        injector = FaultInjector()
        backends = [MemoryBackend(), MemoryBackend()]
        sharded = ShardedBackend(backends)
        assert sharded.shard_timeout is None
        entry = minimal_entry()
        sharded.add(entry)
        assert sharded.get(entry.identifier) == entry
        sharded.close()
        assert injector.fired_counts() == {}


# ----------------------------------------------------------------------
# Replica suspension and reintegration.
# ----------------------------------------------------------------------

class TestReplicaReintegration:
    def build(self, *, reset_timeout=60.0):
        injector = FaultInjector()
        primary = MemoryBackend()
        raw_replica = MemoryBackend()
        replica = FlakyBackend(raw_replica, injector, "replica")
        pair = ReplicatedBackend(primary, [replica],
                                 failure_threshold=3,
                                 reset_timeout=reset_timeout)
        return pair, replica, raw_replica

    def test_breaker_opens_and_suspends_after_threshold(self):
        pair, replica, _ = self.build()
        replica.kill()
        for index in range(3):
            pair.add(minimal_entry(title=f"WRITE {index}"))
        assert pair.suspended_replicas() == (0,)
        stats = pair.resilience_stats()
        assert stats["replicas"][0]["state"] == CircuitBreaker.OPEN
        assert stats["replicas"][0]["suspended"] is True
        assert stats["replica_write_failures"] == 3

    def test_open_breaker_skips_mirror_attempts(self):
        pair, replica, _ = self.build()
        replica.kill()
        for index in range(3):
            pair.add(minimal_entry(title=f"WRITE {index}"))
        fired_at_open = replica.injector.fired(replica.point)
        pair.add(minimal_entry(title="AFTER OPEN"))
        # The dead replica was not even dialled: skip, count, move on.
        assert replica.injector.fired(replica.point) == fired_at_open
        assert pair.resilience_stats()["replica_write_failures"] == 4

    def test_check_health_refuses_a_still_dead_replica(self):
        pair, replica, _ = self.build()
        replica.kill()
        for index in range(3):
            pair.add(minimal_entry(title=f"WRITE {index}"))
        assert pair.check_health() == []
        assert pair.suspended_replicas() == (0,)

    def test_reintegration_repairs_before_rejoin(self):
        pair, replica, raw_replica = self.build()
        replica.kill()
        entries = [minimal_entry(title=f"WRITE {index}")
                   for index in range(4)]
        for entry in entries:
            pair.add(entry)
        assert pair.suspended_replicas() == (0,)
        # The raw replica missed every write while dead.
        assert raw_replica.entry_count() == 0
        replica.revive()
        assert pair.check_health() == [0]
        assert pair.suspended_replicas() == ()
        assert pair.reintegrations == 1
        # Repair-before-rejoin: by the time it is back in rotation the
        # replica holds everything the primary does.
        for entry in entries:
            assert raw_replica.get(entry.identifier) == entry

    def test_reintegrate_failure_keeps_the_replica_suspended(self):
        pair, replica, _ = self.build()
        replica.kill()
        for index in range(3):
            pair.add(minimal_entry(title=f"WRITE {index}"))
        with pytest.raises(ConnectionError):
            pair.reintegrate(0)  # still dead: repair itself fails
        assert pair.suspended_replicas() == (0,)

    def test_reads_fail_over_while_suspended(self):
        pair, replica, _ = self.build()
        entry = minimal_entry()
        pair.add(entry)
        replica.kill()
        for index in range(3):
            pair.add(minimal_entry(title=f"WRITE {index}"))
        assert pair.get(entry.identifier) == entry  # primary serves

    def test_start_reintegration_probe_drives_recovery(self):
        pair, replica, raw_replica = self.build()
        replica.kill()
        for index in range(3):
            pair.add(minimal_entry(title=f"WRITE {index}"))
        replica.revive()
        probe = pair.start_reintegration_probe(interval=0.01)
        policy = RetryPolicy(max_attempts=200, base_delay=0.01,
                             max_delay=0.02)

        def rejoined():
            if pair.suspended_replicas():
                raise ConnectionError("still suspended")
            return True

        try:
            assert policy.call(rejoined, deadline=Deadline.after(5.0))
        finally:
            pair.close()
        assert raw_replica.entry_count() == pair.primary.entry_count()


# ----------------------------------------------------------------------
# Server admission control.
# ----------------------------------------------------------------------

class TestServerAdmission:
    def test_overload_is_shed_with_retry_after(self):
        injector = FaultInjector()
        slow = SlowBackend(MemoryBackend(), injector, "backend.slow",
                           delay=0.6)
        service = RepositoryService(slow, cache_size=0)
        entry = minimal_entry()
        service.add(entry)
        server = RepositoryServer(service, max_inflight=1,
                                  shed_retry_after=2.5).start()
        holder = HTTPBackend(server.url)
        prober = HTTPBackend(server.url,
                             retry_policy=RetryPolicy(max_attempts=1))
        slow.brownout()
        inside = threading.Event()
        results = []

        def hold():
            inside.set()
            results.append(holder.get(entry.identifier))

        thread = threading.Thread(target=hold, daemon=True)
        try:
            thread.start()
            inside.wait(5.0)
            time.sleep(0.1)  # let the held request enter the handler
            with pytest.raises(BackendUnavailableError) as excinfo:
                prober.get(entry.identifier)
            assert excinfo.value.retry_after == pytest.approx(2.5)
            thread.join(10.0)
            assert results == [entry]
            admission = server.metrics.snapshot()["admission"]
            assert admission["shed_overload"] >= 1
        finally:
            slow.restore()
            prober.close()
            holder.close()
            server.stop()
            service.close()

    def test_default_policy_rides_through_a_shed(self):
        """The 503 + Retry-After handshake end to end: the default
        client policy waits the hinted delay and succeeds."""
        service = RepositoryService(MemoryBackend())
        entry = minimal_entry()
        service.add(entry)
        server = RepositoryServer(service, max_inflight=1,
                                  shed_retry_after=0.05).start()
        client = HTTPBackend(server.url)
        try:
            server._tracker.try_enter()  # squat the only slot
            try:
                with pytest.raises(BackendUnavailableError):
                    # Even with retries the slot never frees.
                    client.get(entry.identifier)
            finally:
                server._tracker.exit()
            assert client.get(entry.identifier) == entry
        finally:
            client.close()
            server.stop()
            service.close()

    def test_set_max_inflight_retunes_live(self):
        service = RepositoryService(MemoryBackend())
        server = RepositoryServer(service, max_inflight=64).start()
        try:
            assert server.max_inflight == 64
            server.set_max_inflight(2)
            assert server.max_inflight == 2
        finally:
            server.stop()
            service.close()


# ----------------------------------------------------------------------
# Async admission control.
# ----------------------------------------------------------------------

class TestAsyncAdmission:
    def test_writer_watermark_sheds(self):
        async def scenario():
            async with AsyncRepositoryService(
                    MemoryBackend(),
                    max_pending_writes=1,
                    shed_retry_after=0.75) as aservice:
                release = threading.Event()
                started = threading.Event()
                entry = minimal_entry()

                def blocking_add():
                    started.set()
                    release.wait(5.0)
                    return None

                loop = asyncio.get_running_loop()
                blocker = loop.run_in_executor(
                    aservice._writer, blocking_add)
                await asyncio.get_running_loop().run_in_executor(
                    None, started.wait, 5.0)
                # The single writer is busy; one pending write fills
                # the watermark, the next is shed.
                pending = asyncio.ensure_future(aservice.add(entry))
                await asyncio.sleep(0.05)
                with pytest.raises(BackendUnavailableError) as excinfo:
                    await aservice.add(minimal_entry(title="SHED ME"))
                assert excinfo.value.retry_after == pytest.approx(0.75)
                stats = aservice.admission_stats()
                assert stats["shed_total"] >= 1
                release.set()
                await blocker
                await pending
                assert await aservice.has(entry.identifier)

        asyncio.run(scenario())

    def test_drain_refuses_new_work_and_resume_reopens(self):
        async def scenario():
            async with AsyncRepositoryService(MemoryBackend()) as aservice:
                entry = minimal_entry()
                await aservice.add(entry)
                assert await aservice.drain(timeout=5.0)
                assert aservice.admission_stats()["draining"] is True
                with pytest.raises(BackendUnavailableError,
                                   match="draining"):
                    await aservice.get(entry.identifier)
                aservice.resume()
                assert await aservice.get(entry.identifier) == entry

        asyncio.run(scenario())

    def test_drain_waits_for_inflight_work(self):
        async def scenario():
            async with AsyncRepositoryService(MemoryBackend()) as aservice:
                await aservice.add_many(
                    [minimal_entry(title=f"E {i}") for i in range(20)])
                reads = [asyncio.ensure_future(aservice.identifiers())
                         for _ in range(8)]
                # One loop tick: the reads pass admission and park in
                # the executor before the drain flag flips.
                await asyncio.sleep(0)
                assert await aservice.drain(timeout=5.0)
                for read in reads:
                    assert len(await read) == 20  # admitted work finished

        asyncio.run(scenario())
