"""AsyncRepositoryService: the RepositoryAPI surface as coroutines.

No pytest-asyncio in the container: each test drives its own event
loop with ``asyncio.run`` — which also keeps the loop lifecycle explicit
(the executors must survive exactly as long as the context manager
says they do).
"""

from __future__ import annotations

import asyncio
import inspect
import threading

import pytest

from repro.core.errors import DuplicateEntry, EntryNotFound
from repro.repository.aservice import AsyncRepositoryService
from repro.repository.backends import FileBackend, MemoryBackend
from repro.repository.query import Q, plan
from repro.repository.service import (
    API_METHODS,
    RepositoryAPI,
    RepositoryService,
)
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry


def entry_batch(count: int):
    return [minimal_entry(title=f"ENTRY {index}") for index in range(count)]


class TestConstruction:
    def test_wraps_a_bare_backend(self):
        backend = MemoryBackend()
        aservice = AsyncRepositoryService(backend)
        assert isinstance(aservice.service, RepositoryService)
        assert aservice.service.backend is backend

    def test_reuses_an_existing_service(self):
        service = RepositoryService()
        aservice = AsyncRepositoryService(service)
        assert aservice.service is service

    def test_default_is_memory_backed(self):
        aservice = AsyncRepositoryService()
        assert isinstance(aservice.service.backend, MemoryBackend)

    def test_rejects_nonpositive_reader_pool(self):
        with pytest.raises(ValueError):
            AsyncRepositoryService(max_readers=0)

    def test_satisfies_the_repository_api_protocol(self):
        """The protocol extraction cannot silently drop a method: every
        RepositoryAPI member exists here, as a coroutine function."""
        aservice = AsyncRepositoryService()
        assert isinstance(aservice, RepositoryAPI)
        for name in API_METHODS:
            assert inspect.iscoroutinefunction(getattr(aservice, name)), \
                f"{name} must be async"


class TestReadsAndWrites:
    def test_round_trip_matches_sync_facade(self):
        async def scenario():
            async with AsyncRepositoryService() as aservice:
                await aservice.add(minimal_entry())
                await aservice.add_version(
                    minimal_entry(version=Version(0, 2),
                                  overview="Better."))
                assert (await aservice.get("demo-example")).overview \
                    == "Better."
                assert (await aservice.get(
                    "demo-example", Version(0, 1))).overview == "A demo."
                assert await aservice.identifiers() == ["demo-example"]
                assert await aservice.has("demo-example")
                assert not await aservice.has("nope")
                assert await aservice.entry_count() == 1
                assert await aservice.versions("demo-example") == \
                    [Version(0, 1), Version(0, 2)]
                assert await aservice.versions_many(["demo-example"]) == {
                    "demo-example": [Version(0, 1), Version(0, 2)],
                }

        asyncio.run(scenario())

    def test_errors_propagate_unchanged(self):
        async def scenario():
            async with AsyncRepositoryService() as aservice:
                with pytest.raises(EntryNotFound):
                    await aservice.get("nope")
                await aservice.add(minimal_entry())
                with pytest.raises(DuplicateEntry):
                    await aservice.add(minimal_entry())

        asyncio.run(scenario())

    def test_gather_fans_reads_out(self):
        """Concurrent awaits run on distinct reader threads (the read
        lock admits them all), and every one answers correctly."""
        async def scenario():
            async with AsyncRepositoryService(max_readers=4) as aservice:
                await aservice.add_many(entry_batch(12))
                seen_threads = set()
                barrier = threading.Barrier(4, timeout=5)

                def tracked_get(identifier):
                    # Prove real fan-out: four reads must be *inside*
                    # the service concurrently to pass the barrier.
                    seen_threads.add(threading.get_ident())
                    barrier.wait()
                    return aservice.service.get(identifier)

                entries = await asyncio.gather(*(
                    aservice._read(
                        lambda identifier=f"entry-{i}":
                        tracked_get(identifier))
                    for i in range(4)
                ))
                assert [e.identifier for e in entries] == \
                    [f"entry-{i}" for i in range(4)]
                assert len(seen_threads) == 4

        asyncio.run(scenario())

    def test_get_many_is_one_atomic_batch(self):
        """A bulk read is a single service call under one read lock —
        a concurrent write lands before or after the whole batch,
        never between two halves of it (no torn snapshot)."""
        async def scenario():
            async with AsyncRepositoryService(max_readers=4) as aservice:
                batch = entry_batch(30)
                await aservice.add_many(batch)
                requests = [e.identifier for e in batch]
                requests.append(("entry-0", Version(0, 1)))
                entries = await aservice.get_many(requests)
                assert [e.identifier for e in entries] == \
                    [e.identifier for e in batch] + ["entry-0"]

                calls = []
                original = aservice.service.get_many

                def spying(reqs):
                    calls.append(len(reqs))
                    return original(reqs)

                aservice.service.get_many = spying
                try:
                    await aservice.get_many(requests)
                finally:
                    aservice.service.get_many = original
                assert calls == [len(requests)]  # one call, whole batch

        asyncio.run(scenario())

    def test_writes_are_serialised_in_submission_order(self):
        """A gather of dependent writes cannot interleave: the single
        writer thread runs them FIFO, so each version lands on the
        previous one."""
        async def scenario():
            async with AsyncRepositoryService() as aservice:
                await aservice.add(minimal_entry())
                await asyncio.gather(*(
                    aservice.add_version(
                        minimal_entry(version=Version(0, minor)))
                    for minor in range(2, 10)
                ))
                assert await aservice.versions("demo-example") == \
                    [Version(0, minor) for minor in range(1, 10)]

        asyncio.run(scenario())


class TestQueries:
    def test_query_matches_sync_results(self):
        async def scenario():
            service = RepositoryService()
            async with AsyncRepositoryService(service) as aservice:
                await aservice.add_many(entry_batch(6))
                await aservice.add(minimal_entry(
                    title="ZYGOTE", overview="A distinctive cell."))
                result = await aservice.query(
                    "zygote distinctive", limit=3)
                expected = service.query("zygote distinctive", limit=3)
                assert result.identifiers == expected.identifiers
                assert result.total == expected.total
                assert result.facets == expected.facets

        asyncio.run(scenario())

    def test_execute_query_and_stats(self):
        async def scenario():
            async with AsyncRepositoryService() as aservice:
                await aservice.add_many(entry_batch(4))
                result = await aservice.execute_query(
                    plan(Q.author("Ann"), sort="identifier", limit=2))
                assert result.identifiers == ["entry-0", "entry-1"]
                assert result.total == 4
                stats = await aservice.query_stats(["entry"])
                assert stats.document_count == 4
                assert await aservice.change_counter() is None
                assert "entry_cache" in await aservice.cache_stats()

        asyncio.run(scenario())


class TestLifecycle:
    def test_context_exit_saves_index_and_closes(self, tmp_path):
        async def scenario():
            # A file backend: no native pushdown, so query() lazily
            # enables the index — and it has the durable change counter
            # the snapshot is stamped with.
            backend = FileBackend(tmp_path / "repo")
            service = RepositoryService(
                backend, index_path=tmp_path / "index.json")
            async with AsyncRepositoryService(service) as aservice:
                await aservice.add_many(entry_batch(3))
                assert (await aservice.query("entry")).total == 3

        asyncio.run(scenario())
        # close() ran save_index: the snapshot is on disk and a fresh
        # service restores it instead of rebuilding.
        assert (tmp_path / "index.json").is_file()

    def test_close_waits_for_in_flight_reads(self, tmp_path):
        """close() drains the reader pool before the backend closes:
        a read racing the shutdown finishes against a live store
        instead of crashing on a closed connection."""
        import time

        from repro.repository.backends import SQLiteBackend

        async def scenario():
            service = RepositoryService(SQLiteBackend(tmp_path / "a.db"))
            aservice = AsyncRepositoryService(service)
            await aservice.add(minimal_entry())

            def slow_get():
                time.sleep(0.3)  # the backend must still be open after
                return aservice.service.get("demo-example")

            entry, _ = await asyncio.gather(aservice._read(slow_get),
                                            aservice.close())
            assert entry.identifier == "demo-example"

        asyncio.run(scenario())

    def test_close_never_blocks_the_event_loop(self):
        """Regression (found by the `async-purity` analysis rule):
        close() used to call ``self._writer.shutdown(wait=True)``
        directly on the loop, so a writer queue that takes a while to
        drain froze every other coroutine.  Both executor shutdowns now
        run off-loop; a ticker task must keep ticking throughout."""
        import time

        async def scenario():
            aservice = AsyncRepositoryService()
            await aservice.add(minimal_entry())

            real_shutdown = aservice._writer.shutdown

            def slow_shutdown(wait=True):
                time.sleep(0.3)  # a writer queue that drains slowly
                real_shutdown(wait=wait)

            aservice._writer.shutdown = slow_shutdown

            ticks = 0
            closed = asyncio.Event()

            async def ticker():
                nonlocal ticks
                while not closed.is_set():
                    ticks += 1
                    await asyncio.sleep(0.01)

            ticking = asyncio.ensure_future(ticker())
            await aservice.close()
            closed.set()
            await ticking
            # ~30 ticks fit into the slow shutdown alone; even a loaded
            # CI box manages a handful unless the loop was blocked.
            assert ticks >= 5, f"event loop starved during close ({ticks})"

        asyncio.run(scenario())

    def test_close_is_idempotent_and_final(self):
        async def scenario():
            aservice = AsyncRepositoryService()
            await aservice.add(minimal_entry())
            await aservice.close()
            await aservice.close()  # second close: a no-op
            with pytest.raises(RuntimeError):
                await aservice.get("demo-example")

        asyncio.run(scenario())


class TestWriteCoalescing:
    """Adjacent queued writes drain as one group commit (PR 10)."""

    def test_concurrent_writes_coalesce_into_fewer_commits(self):
        from repro.repository.backends import SQLiteBackend

        async def main():
            backend = SQLiteBackend()
            async with AsyncRepositoryService(backend) as service:
                before = backend.change_counter()
                await asyncio.gather(
                    *[service.add(entry) for entry in entry_batch(40)])
                commits = backend.change_counter() - before
                stats = service.admission_stats()
                count = await service.entry_count()
                return commits, stats, count

        commits, stats, count = asyncio.run(main())
        assert count == 40
        # 40 concurrent adds must land in far fewer commit units than
        # writes (the first drain may run solo before the queue fills).
        assert commits < 40
        assert stats["coalesced_groups"] >= 1
        assert stats["coalesced_writes"] >= 2
        assert 2 <= stats["coalesce_high_water"] <= stats["max_coalesce"]

    def test_events_fire_per_entry_in_submission_order(self):
        events = []

        async def main():
            sync = RepositoryService(MemoryBackend())
            sync.subscribe(lambda event: events.append(event))
            entries = entry_batch(24)
            async with AsyncRepositoryService(sync) as service:
                await asyncio.gather(
                    *[service.add(entry) for entry in entries])
            return entries

        entries = asyncio.run(main())
        assert [event.kind for event in events] == ["add"] * len(entries)
        # The queue is FIFO and the writer thread drains runs in order,
        # so events replay the submission order exactly — grouped or not.
        assert [event.entry.identifier for event in events] \
            == [entry.identifier for entry in entries]

    def test_invalid_entry_fails_alone_its_groupmates_commit(self):
        async def main():
            async with AsyncRepositoryService(MemoryBackend()) as service:
                first = minimal_entry(title="ENTRY 0")
                await service.add(first)
                batch = entry_batch(12)[1:]  # ENTRY 1..11
                results = await asyncio.gather(
                    service.add(minimal_entry(title="ENTRY 0")),  # dup
                    *[service.add(entry) for entry in batch],
                    return_exceptions=True,
                )
                return results, await service.entry_count(), \
                    service.admission_stats()

        results, count, stats = asyncio.run(main())
        failures = [r for r in results if isinstance(r, BaseException)]
        assert len(failures) == 1
        assert isinstance(failures[0], DuplicateEntry)
        assert count == 12  # ENTRY 0..11: everyone else landed
        assert stats["shed_total"] == 0

    def test_futures_resolve_only_after_the_group_commits(self):
        """An awaited add() is durable: the moment the coroutine
        resumes, a fresh read connection must see the entry — the ack
        comes after the group transaction, never inside it."""
        from repro.repository.backends import SQLiteBackend

        async def main(tmp):
            backend = SQLiteBackend(tmp / "acks.db")
            loop = asyncio.get_running_loop()
            async with AsyncRepositoryService(backend) as service:
                entries = entry_batch(32)

                async def add_then_probe(entry):
                    await service.add(entry)
                    # Probe from a plain thread: a separate read-only
                    # connection, no group-membership special cases.
                    return await loop.run_in_executor(
                        None, backend.has, entry.identifier)

                probes = await asyncio.gather(
                    *[add_then_probe(entry) for entry in entries])
                stats = service.admission_stats()
            return probes, stats

        import tempfile
        from pathlib import Path
        with tempfile.TemporaryDirectory() as tmp:
            probes, stats = asyncio.run(main(Path(tmp)))
        assert all(probes), "an acked write was not yet readable"
        assert stats["coalesced_groups"] >= 1

    def test_add_many_chunks_are_atomic_and_resumable(self):
        from repro.repository.backends import SQLiteBackend

        async def main():
            async with AsyncRepositoryService(
                    SQLiteBackend(), coalesce_chunk=8) as service:
                entries = entry_batch(20)
                entries[12] = entries[3]  # duplicate inside chunk 2
                with pytest.raises(DuplicateEntry):
                    await service.add_many(entries)
                return await service.entry_count()

        # Chunk 1 (entries 0-7) committed; chunk 2 (8-15) hit the
        # duplicate and rolled back whole (transactional backend);
        # chunk 3 never ran — the load is resumable, not atomic.
        assert asyncio.run(main()) == 8

    def test_rejects_nonpositive_coalesce_parameters(self):
        with pytest.raises(ValueError):
            AsyncRepositoryService(MemoryBackend(), max_coalesce=0)
        with pytest.raises(ValueError):
            AsyncRepositoryService(MemoryBackend(), coalesce_chunk=0)
