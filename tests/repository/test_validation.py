"""Unit tests for template validation (repro.repository.validation)."""

from __future__ import annotations

import pytest

from repro.core.errors import ValidationError
from repro.repository.entry import PropertyClaim, Variant
from repro.repository.template import EntryType
from repro.repository.validation import require_valid, validate_entry
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry


class TestRequiredFields:
    def test_valid_entry_passes(self):
        report = validate_entry(minimal_entry())
        assert report.ok, report.describe()

    @pytest.mark.parametrize("field,value,fragment", [
        ("title", "  ", "Title"),
        ("types", (), "Type"),
        ("overview", "", "Overview"),
        ("models", (), "Models"),
        ("consistency", "", "Consistency"),
        ("discussion", "", "Discussion"),
        ("authors", (), "Authors"),
    ])
    def test_missing_required_field(self, field, value, fragment):
        entry = minimal_entry(**{field: value})
        report = validate_entry(entry)
        assert not report.ok
        assert any(fragment in problem for problem in report.errors)

    def test_empty_restoration(self):
        from repro.repository.entry import RestorationSpec
        entry = minimal_entry(restoration=RestorationSpec())
        assert not validate_entry(entry).ok


class TestTypeRules:
    def test_precise_and_sketch_conflict(self):
        entry = minimal_entry(types=(EntryType.PRECISE, EntryType.SKETCH))
        report = validate_entry(entry)
        assert any("mutually exclusive" in p for p in report.errors)

    def test_industrial_combination_allowed(self):
        entry = minimal_entry(
            types=(EntryType.PRECISE, EntryType.INDUSTRIAL))
        assert validate_entry(entry).ok

    def test_duplicate_types(self):
        entry = minimal_entry(types=(EntryType.PRECISE, EntryType.PRECISE))
        assert any("duplicates" in p
                   for p in validate_entry(entry).errors)


class TestVersionReviewCoupling:
    def test_reviewed_version_needs_reviewers(self):
        entry = minimal_entry(version=Version(1, 0))
        report = validate_entry(entry)
        assert any("reviewer" in p for p in report.errors)

    def test_reviewed_version_with_reviewers_ok(self):
        entry = minimal_entry(version=Version(1, 0), reviewers=("Rex",))
        assert validate_entry(entry).ok

    def test_reviewers_on_provisional_warns(self):
        entry = minimal_entry(reviewers=("Rex",))
        report = validate_entry(entry)
        assert report.ok
        assert any("promoting" in w for w in report.warnings)


class TestOverviewLength:
    def test_three_sentences_allowed(self):
        entry = minimal_entry(overview="One. Two. Three.")
        assert validate_entry(entry).ok

    def test_four_sentences_rejected(self):
        entry = minimal_entry(overview="One. Two. Three. Four.")
        report = validate_entry(entry)
        assert any("sentences" in p for p in report.errors)


class TestPropertyClaims:
    def test_unknown_property_rejected(self):
        entry = minimal_entry(properties=(PropertyClaim("sparkly"),))
        report = validate_entry(entry)
        assert any("sparkly" in p for p in report.errors)

    def test_least_change_is_claimable(self):
        entry = minimal_entry(properties=(PropertyClaim("least change"),))
        assert validate_entry(entry).ok

    def test_duplicate_claims(self):
        entry = minimal_entry(properties=(
            PropertyClaim("correct"), PropertyClaim("correct")))
        assert any("duplicate" in p.lower()
                   for p in validate_entry(entry).errors)

    def test_explicit_known_set(self):
        entry = minimal_entry(properties=(PropertyClaim("custom"),))
        assert validate_entry(entry, known_properties={"custom"}).ok


class TestWarnings:
    def test_precise_without_properties_warns(self):
        entry = minimal_entry(properties=())
        report = validate_entry(entry)
        assert report.ok
        assert any("properties" in w for w in report.warnings)

    def test_no_references_warns(self):
        report = validate_entry(minimal_entry())
        assert any("references" in w for w in report.warnings)

    def test_empty_variant_description_is_error(self):
        entry = minimal_entry(variants=(Variant("v", "  "),))
        assert not validate_entry(entry).ok


class TestRequireValid:
    def test_raises_with_all_problems(self):
        entry = minimal_entry(title="", overview="")
        with pytest.raises(ValidationError) as excinfo:
            require_valid(entry)
        assert len(excinfo.value.problems) >= 2

    def test_returns_report_when_ok(self):
        assert require_valid(minimal_entry()).ok
