"""The group-commit seam (PR 10): ``write_group`` on every layer.

Conformance across backends (the no-op default included), the
single-transaction / single-counter-bump guarantees of the durable
layers, per-entry events through the service facade, cache coherence
at the post-group counter, and the mid-group crash window of the
file backend.
"""

from __future__ import annotations

import pytest

from repro.core.errors import DuplicateEntry, StorageError
from repro.repository.backends import (
    FileBackend,
    MemoryBackend,
    SQLiteBackend,
)
from repro.repository.faults import FaultInjector, InjectedFault
from repro.repository.render_cache import RenderCache
from repro.repository.service import RepositoryService
from tests.repository.test_entry import minimal_entry


def entry_batch(count: int, prefix: str = "GROUP"):
    return [minimal_entry(title=f"{prefix} {index}")
            for index in range(count)]


def make_backend(kind: str, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    if kind == "file":
        return FileBackend(tmp_path / "repo")
    if kind == "sqlite-memory":
        return SQLiteBackend()
    return SQLiteBackend(tmp_path / "repo.db")


BACKENDS = ("memory", "file", "sqlite-memory", "sqlite")


class TestBackendConformance:
    """Every backend honours the same observable group semantics."""

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_grouped_writes_all_land_and_are_readable_after(
            self, tmp_path, kind):
        backend = make_backend(kind, tmp_path)
        entries = entry_batch(6)
        with backend.write_group():
            for entry in entries:
                backend.add(entry)
        assert backend.entry_count() == len(entries)
        for entry in entries:
            assert backend.get(entry.identifier) == entry

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_failing_write_raises_at_that_write_and_alone(
            self, tmp_path, kind):
        backend = make_backend(kind, tmp_path)
        first = minimal_entry(title="GROUP 0")
        backend.add(first)
        with backend.write_group():
            backend.add(minimal_entry(title="GROUP 1"))
            with pytest.raises(DuplicateEntry):
                backend.add(minimal_entry(title="GROUP 0"))
            backend.add(minimal_entry(title="GROUP 2"))
        assert backend.entry_count() == 3

    @pytest.mark.parametrize("kind", BACKENDS)
    def test_reads_inside_the_group_see_its_writes(self, tmp_path, kind):
        backend = make_backend(kind, tmp_path)
        entry = minimal_entry(title="GROUP 0")
        with backend.write_group():
            backend.add(entry)
            assert backend.has(entry.identifier)
            assert backend.get(entry.identifier) == entry
            assert entry.identifier in backend.identifiers()

    @pytest.mark.parametrize("kind", ("file", "sqlite-memory", "sqlite"))
    def test_same_thread_nesting_joins_the_outer_group(
            self, tmp_path, kind):
        backend = make_backend(kind, tmp_path)
        before = backend.change_counter()
        with backend.write_group():
            backend.add(minimal_entry(title="GROUP 0"))
            with backend.write_group():
                backend.add(minimal_entry(title="GROUP 1"))
            backend.add(minimal_entry(title="GROUP 2"))
        assert backend.entry_count() == 3
        # Joining must not mint extra commit units: the whole nest is
        # one group (sqlite: one bump; file: one bump-write-bump pair).
        delta = backend.change_counter() - before
        assert delta == (2 if kind == "file" else 1)


class TestSQLiteGroupCommit:
    def test_group_is_one_transaction_and_one_counter_bump(
            self, tmp_path):
        backend = SQLiteBackend(tmp_path / "repo.db")
        before = backend.change_counter()
        with backend.write_group():
            for entry in entry_batch(10):
                backend.add(entry)
        assert backend.change_counter() == before + 1
        assert backend.entry_count() == 10

    def test_escaping_exception_rolls_the_whole_group_back(
            self, tmp_path):
        backend = SQLiteBackend(tmp_path / "repo.db")
        before = backend.change_counter()
        with pytest.raises(RuntimeError):
            with backend.write_group():
                for entry in entry_batch(4):
                    backend.add(entry)
                raise RuntimeError("crash mid-group")
        assert backend.entry_count() == 0
        assert backend.change_counter() == before
        # The backend stays usable and the next group commits cleanly.
        with backend.write_group():
            backend.add(minimal_entry(title="GROUP AFTER"))
        assert backend.entry_count() == 1

    def test_durability_knob_validates_and_sticks(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "full.db", durability="full")
        assert backend.durability == "full"
        backend.add(minimal_entry(title="GROUP 0"))
        assert backend.entry_count() == 1
        with pytest.raises(StorageError):
            SQLiteBackend(tmp_path / "bad.db", durability="paranoid")


class TestFileGroupCommit:
    def test_group_batches_counter_writes_to_one_pair(self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        solo = minimal_entry(title="SOLO")
        backend.add(solo)
        per_write = backend.change_counter()  # bump-write-bump = 2/write
        assert per_write == 2
        with backend.write_group():
            for entry in entry_batch(8):
                backend.add(entry)
        # Eight grouped writes cost the same two counter writes one
        # ungrouped write does — that is the fsync batching.
        assert backend.change_counter() == per_write + 2
        assert backend.entry_count() == 9

    def test_listing_and_memo_stay_coherent_after_the_group(
            self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        backend.add(minimal_entry(title="BEFORE"))
        assert backend.entry_count() == 1  # prime the listing cache
        entries = entry_batch(5)
        with backend.write_group():
            for entry in entries:
                backend.add(entry)
        assert sorted(backend.identifiers()) == sorted(
            ["before"] + [entry.identifier for entry in entries])
        for entry in entries:
            assert backend.get(entry.identifier) == entry

    def test_midgroup_crash_leaves_no_partially_indexed_debris(
            self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        injector = FaultInjector()
        backend.fault_hook = injector.hook("file.crash")
        committed = entry_batch(2, prefix="OK")
        doomed = minimal_entry(title="DOOMED")
        with backend.write_group():
            backend.add(committed[0])
            injector.arm("file.crash", mode="once")
            with pytest.raises(InjectedFault):
                backend.add(doomed)
            backend.add(committed[1])
        # The crashed write is invisible everywhere it counts: no
        # listing entry, no readable snapshot, nothing renamed in.  A
        # ``*.json.tmp`` fragment on disk is the documented (and
        # read-path-ignored) crash residue — same as the ungrouped
        # crash window — but no *committed* snapshot may exist.
        assert not backend.has(doomed.identifier)
        assert doomed.identifier not in backend.identifiers()
        committed_snapshots = [
            path for path in (tmp_path / "repo").rglob("*.json")
            if doomed.identifier in str(path.parent)
        ]
        assert committed_snapshots == []
        assert len(list((tmp_path / "repo").rglob("*.json.tmp"))) == 1
        # Its groupmates landed and survive a cold re-open.
        assert backend.entry_count() == 2
        reopened = FileBackend(tmp_path / "repo")
        for entry in committed:
            assert reopened.get(entry.identifier) == entry
        assert not reopened.has(doomed.identifier)


class TestServiceWriteGroup:
    def test_emits_per_entry_events_in_order(self):
        service = RepositoryService(MemoryBackend())
        events = []
        service.subscribe(lambda event: events.append(event))
        entries = entry_batch(5)
        with service.write_group():
            for entry in entries:
                service.add(entry)
        assert [event.kind for event in events] == ["add"] * 5
        assert [event.entry.identifier for event in events] \
            == [entry.identifier for entry in entries]

    def test_not_part_of_the_wire_api(self):
        from repro.repository.service import API_METHODS
        assert "write_group" not in API_METHODS

    def test_caches_see_the_post_group_change_counter(self, tmp_path):
        """DecodeMemo/RenderCache coherence: after a group commits, the
        service's counter is the group's single post-commit value and
        event-driven caches re-render against it — no stale page, no
        phantom intermediate counters."""
        backend = SQLiteBackend(tmp_path / "repo.db")
        service = RepositoryService(backend)
        cache = RenderCache(service)
        first = minimal_entry(title="GROUP 0")
        service.add(first)
        page_before = cache.wiki_page(first.identifier)
        counter_before = service.change_counter()
        bumped = minimal_entry(
            title="GROUP 0",
            overview="Rewritten inside the group commit.")
        with service.write_group():
            service.replace_latest(bumped)
            for entry in entry_batch(4, prefix="MORE"):
                service.add(entry)
        assert service.change_counter() == counter_before + 1
        page_after = cache.wiki_page(first.identifier)
        assert page_after != page_before
        assert "Rewritten inside the group commit." in page_after
        # And the backend-level memo serves the group's snapshot, not a
        # pre-group one.
        assert backend.get(first.identifier) == bumped

    def test_escaping_exception_drops_snapshot_cache(self, tmp_path):
        """The facade's write-through cache saw entries whose backend
        writes rolled back; an escaping group exception must flush it
        so no phantom entry survives."""
        backend = SQLiteBackend(tmp_path / "repo.db")
        service = RepositoryService(backend, cache_size=32)
        ghost = minimal_entry(title="GHOST")
        with pytest.raises(RuntimeError):
            with service.write_group():
                service.add(ghost)
                assert service.get(ghost.identifier) == ghost
                raise RuntimeError("crash mid-group")
        assert not service.has(ghost.identifier)
        with pytest.raises(Exception):
            service.get(ghost.identifier)
