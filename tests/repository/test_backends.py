"""Backend conformance: one shared suite run against every backend.

Every :class:`~repro.repository.backends.StorageBackend` must honour the
same contract — stable identifiers, append-only strictly-increasing
histories, ``replace_latest`` pinned to the stored version, batch
operations consistent with their point equivalents.  The suite is
parametrised over memory, file and sqlite so a new backend only has to
join the fixture list to be held to the contract.
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import (
    DuplicateEntry,
    EntryNotFound,
    StorageError,
)
from repro.repository.backends import (
    BACKEND_SCHEMES,
    FileBackend,
    MemoryBackend,
    SQLiteBackend,
    StorageBackend,
    create_backend,
)
from repro.repository.client import HTTPBackend
from repro.repository.faults import FaultInjector, FlakyBackend
from repro.repository.server import RepositoryServer
from repro.repository.service import RepositoryService
from repro.repository.store import FileStore, MemoryStore, RepositoryStore
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry

#: "http" is a full wire round-trip: an in-process RepositoryServer
#: over a memory-backed service, spoken to through HTTPBackend — the
#: unchanged conformance suite below holds the whole serving stack to
#: the storage contract.  "flaky" is the fault-injection wrapper with
#: nothing armed: the suite proves the seam is observationally
#: invisible until a fault is scheduled.
ALL_BACKENDS = ["memory", "file", "sqlite", "http", "flaky"]


class ServedBackend(HTTPBackend):
    """An HTTPBackend owning its in-process server: one fixture object
    whose close() tears down client connections, listener and the
    served service alike."""

    def __init__(self, backend: StorageBackend) -> None:
        self.server = RepositoryServer(
            RepositoryService(backend), close_service=True).start()
        super().__init__(self.server.url)

    def close(self) -> None:
        super().close()
        self.server.stop()


def make_backend(kind: str, tmp_path) -> StorageBackend:
    if kind == "memory":
        return MemoryBackend()
    if kind == "file":
        return FileBackend(tmp_path / "repo")
    if kind == "http":
        return ServedBackend(MemoryBackend())
    if kind == "flaky":
        return FlakyBackend(FileBackend(tmp_path / "repo"),
                            FaultInjector(), "conformance")
    return SQLiteBackend(tmp_path / "repo.db")


@pytest.fixture(params=ALL_BACKENDS)
def backend(request, tmp_path):
    built = make_backend(request.param, tmp_path)
    yield built
    built.close()


def entry_batch(count: int, start: int = 0):
    return [minimal_entry(title=f"ENTRY {index}")
            for index in range(start, start + count)]


class TestConformance:
    def test_add_and_get(self, backend):
        entry = minimal_entry()
        backend.add(entry)
        assert backend.get("demo-example") == entry
        assert backend.identifiers() == ["demo-example"]
        assert backend.entry_count() == 1

    def test_direct_existence_check(self, backend):
        assert not backend.has("demo-example")
        backend.add(minimal_entry())
        assert backend.has("demo-example")
        assert not backend.has("nope")

    def test_duplicate_add_rejected(self, backend):
        backend.add(minimal_entry())
        with pytest.raises(DuplicateEntry):
            backend.add(minimal_entry())

    def test_unknown_identifier(self, backend):
        with pytest.raises(EntryNotFound):
            backend.get("nope")
        with pytest.raises(EntryNotFound):
            backend.versions("nope")
        with pytest.raises(EntryNotFound):
            backend.add_version(minimal_entry())

    def test_versioned_retrieval(self, backend):
        backend.add(minimal_entry())
        backend.add_version(minimal_entry(version=Version(0, 2),
                                          overview="Better."))
        assert backend.get("demo-example").overview == "Better."
        assert backend.get("demo-example", Version(0, 1)).overview \
            == "A demo."
        assert backend.versions("demo-example") == \
            [Version(0, 1), Version(0, 2)]
        assert backend.latest_version("demo-example") == Version(0, 2)

    def test_version_ordering_not_lexicographic(self, backend):
        """0.9 < 0.10 — orderings must be numeric in every medium."""
        backend.add(minimal_entry(version=Version(0, 9)))
        backend.add_version(minimal_entry(version=Version(0, 10)))
        assert backend.latest_version("demo-example") == Version(0, 10)
        assert backend.get("demo-example").version == Version(0, 10)

    def test_unknown_version(self, backend):
        backend.add(minimal_entry())
        with pytest.raises(EntryNotFound):
            backend.get("demo-example", Version(0, 9))

    def test_add_version_must_increase(self, backend):
        backend.add(minimal_entry(version=Version(0, 2)))
        with pytest.raises(StorageError):
            backend.add_version(minimal_entry(version=Version(0, 1)))
        with pytest.raises(StorageError):
            backend.add_version(minimal_entry(version=Version(0, 2)))

    def test_replace_latest(self, backend):
        backend.add(minimal_entry())
        backend.replace_latest(minimal_entry(overview="Patched."))
        assert backend.get("demo-example").overview == "Patched."
        assert backend.versions("demo-example") == [Version(0, 1)]

    def test_replace_latest_rejects_version_change(self, backend):
        backend.add(minimal_entry())
        with pytest.raises(StorageError):
            backend.replace_latest(minimal_entry(version=Version(0, 2)))

    def test_replace_latest_unknown_entry(self, backend):
        with pytest.raises(EntryNotFound):
            backend.replace_latest(minimal_entry())

    def test_add_many_matches_point_adds(self, backend):
        batch = entry_batch(5)
        assert backend.add_many(batch) == 5
        assert backend.entry_count() == 5
        for entry in batch:
            assert backend.get(entry.identifier) == entry

    def test_add_many_rejects_existing_identifier(self, backend):
        backend.add(minimal_entry(title="ENTRY 1"))
        with pytest.raises(DuplicateEntry):
            backend.add_many(entry_batch(3))  # ENTRY 0..2 collides

    def test_get_many_mixed_requests(self, backend):
        backend.add_many(entry_batch(3))
        backend.add_version(minimal_entry(title="ENTRY 1",
                                          version=Version(0, 2)))
        results = backend.get_many([
            "entry-0",
            ("entry-1", Version(0, 1)),
            ("entry-1", None),
            "entry-2",
        ])
        assert [e.identifier for e in results] == \
            ["entry-0", "entry-1", "entry-1", "entry-2"]
        assert results[1].version == Version(0, 1)
        assert results[2].version == Version(0, 2)

    def test_get_many_unknown_raises(self, backend):
        with pytest.raises(EntryNotFound):
            backend.get_many(["nope"])

    def test_versions_many(self, backend):
        backend.add_many(entry_batch(2))
        backend.add_version(minimal_entry(title="ENTRY 0",
                                          version=Version(0, 2)))
        assert backend.versions_many(["entry-0", "entry-1"]) == {
            "entry-0": [Version(0, 1), Version(0, 2)],
            "entry-1": [Version(0, 1)],
        }

    def test_context_manager(self, tmp_path, request):
        with make_backend("sqlite", tmp_path) as backend:
            backend.add(minimal_entry())
            assert backend.has("demo-example")


class TestSQLiteSpecifics:
    def test_reopen_preserves_contents(self, tmp_path):
        with SQLiteBackend(tmp_path / "repo.db") as backend:
            backend.add(minimal_entry())
            backend.add_version(minimal_entry(version=Version(0, 2)))
        with SQLiteBackend(tmp_path / "repo.db") as reopened:
            assert reopened.versions("demo-example") == \
                [Version(0, 1), Version(0, 2)]
            assert reopened.get("demo-example").version == Version(0, 2)

    def test_add_many_is_transactional(self, tmp_path):
        """A failing bulk load stores nothing (all-or-nothing)."""
        with SQLiteBackend(tmp_path / "repo.db") as backend:
            batch = entry_batch(3) + [minimal_entry(title="ENTRY 0")]
            with pytest.raises(DuplicateEntry):
                backend.add_many(batch)
            assert backend.entry_count() == 0
            assert backend.identifiers() == []

    def test_in_memory_default(self):
        backend = SQLiteBackend()
        backend.add(minimal_entry())
        assert backend.has("demo-example")
        backend.close()


class TestFileCrashSafety:
    """A crashed writer leaves fragments every read path must ignore."""

    def test_partial_temp_file_ignored(self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        backend.add(minimal_entry())
        entry_dir = tmp_path / "repo" / "entries" / "demo-example"
        (entry_dir / "0.2.json.tmp").write_text('{"title": "TRUNCAT')
        assert backend.versions("demo-example") == [Version(0, 1)]
        assert backend.get("demo-example").version == Version(0, 1)
        # ...and the next committed write succeeds over the debris.
        backend.add_version(minimal_entry(version=Version(0, 2)))
        assert backend.latest_version("demo-example") == Version(0, 2)

    def test_empty_entry_dir_is_not_an_entry(self, tmp_path):
        """mkdir happened, the snapshot rename did not."""
        backend = FileBackend(tmp_path / "repo")
        backend.add(minimal_entry())
        (tmp_path / "repo" / "entries" / "ghost").mkdir()
        assert backend.identifiers() == ["demo-example"]
        assert not backend.has("ghost")
        with pytest.raises(EntryNotFound):
            backend.get("ghost")

    def test_add_recovers_over_empty_dir(self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        (tmp_path / "repo" / "entries" / "demo-example").mkdir()
        backend.add(minimal_entry())  # not a duplicate: nothing committed
        assert backend.get("demo-example").title == "DEMO EXAMPLE"

    def test_reopen_after_crash_fragments(self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        backend.add(minimal_entry())
        entries = tmp_path / "repo" / "entries"
        (entries / "demo-example" / "0.2.json.tmp").write_text("{")
        (entries / "ghost").mkdir()
        reopened = FileBackend(tmp_path / "repo")
        assert reopened.identifiers() == ["demo-example"]
        assert reopened.get("demo-example").version == Version(0, 1)


class TestFileListingCache:
    """identifiers()/has()/versions() stop scanning the tree per call:
    one scan per change-counter value, maintained incrementally by this
    backend's own writes, invalidated by anyone else's counter bump."""

    def scans(self, backend) -> int:
        return backend.cache_stats()["listing"]["scans"]

    def test_repeated_reads_cost_one_scan(self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        backend.add_many(entry_batch(5))
        baseline = self.scans(backend)
        for _round in range(10):
            assert backend.identifiers() == [f"entry-{i}"
                                             for i in range(5)]
            assert backend.has("entry-3")
            assert not backend.has("nope")
            assert backend.versions("entry-0") == [Version(0, 1)]
        assert self.scans(backend) <= baseline + 1

    def test_own_writes_update_without_rescan(self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        backend.add(minimal_entry())
        backend.identifiers()  # make the cache current
        baseline = self.scans(backend)
        backend.add(minimal_entry(title="SECOND"))
        backend.add_version(minimal_entry(title="SECOND",
                                          version=Version(0, 2)))
        assert backend.identifiers() == ["demo-example", "second"]
        assert backend.versions("second") == [Version(0, 1),
                                              Version(0, 2)]
        assert self.scans(backend) == baseline  # incremental, no rescan

    def test_foreign_writer_triggers_exactly_one_rescan(self, tmp_path):
        ours = FileBackend(tmp_path / "repo")
        ours.add(minimal_entry())
        assert ours.identifiers() == ["demo-example"]
        theirs = FileBackend(tmp_path / "repo")
        theirs.add(minimal_entry(title="FOREIGN"))
        baseline = self.scans(ours)
        assert ours.identifiers() == ["demo-example", "foreign"]
        assert ours.has("foreign")
        assert ours.identifiers() == ["demo-example", "foreign"]
        assert self.scans(ours) == baseline + 1

    def test_crash_debris_still_invisible(self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        backend.add(minimal_entry())
        entries = tmp_path / "repo" / "entries"
        (entries / "ghost").mkdir()
        (entries / "demo-example" / "0.2.json.tmp").write_text("{")
        fresh = FileBackend(tmp_path / "repo")  # scans over the debris
        assert fresh.identifiers() == ["demo-example"]
        assert not fresh.has("ghost")
        assert fresh.versions("demo-example") == [Version(0, 1)]


class TestCompatibilityShim:
    def test_store_names_are_backend_classes(self):
        assert RepositoryStore is StorageBackend
        assert MemoryStore is MemoryBackend
        assert FileStore is FileBackend

    def test_create_backend_schemes(self, tmp_path):
        assert set(BACKEND_SCHEMES) == {"memory", "file", "sqlite"}
        assert isinstance(create_backend("memory"), MemoryBackend)
        assert isinstance(create_backend("file", tmp_path / "r"),
                          FileBackend)
        sqlite_backend = create_backend("sqlite", tmp_path / "r.db")
        assert isinstance(sqlite_backend, SQLiteBackend)
        sqlite_backend.close()

    def test_create_backend_rejects_unknown(self):
        with pytest.raises(StorageError, match="unknown storage backend"):
            create_backend("cloud")

    def test_create_backend_requires_path(self):
        with pytest.raises(StorageError, match="needs a path"):
            create_backend("sqlite")

    def test_file_layout_unchanged(self, tmp_path):
        """The on-disk format is the seed's: entries/<id>/<version>.json."""
        backend = FileBackend(tmp_path / "repo")
        backend.add(minimal_entry())
        path = tmp_path / "repo" / "entries" / "demo-example" / "0.1.json"
        assert path.is_file()
        assert json.loads(path.read_text())["title"] == "DEMO EXAMPLE"
