"""The unified query API: AST, evaluator semantics, IDF ranking,
persistent index snapshots, and the consumers wired through it."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import StorageError
from repro.repository.backends import (
    FileBackend,
    MemoryBackend,
    SQLiteBackend,
)
from repro.repository.citation import archive_manuscript
from repro.repository.curation import CuratedRepository
from repro.repository.export import render_repository_markdown
from repro.repository.query import (
    And,
    HasProperty,
    Not,
    Or,
    Q,
    QueryStats,
    Text,
    collect_positive_terms,
    collect_terms,
    entry_terms,
    inverse_document_frequency,
    plan,
    plan_from_dict,
    plan_to_dict,
    query_from_dict,
    query_to_dict,
    result_from_dict,
    result_to_dict,
    stats_from_dict,
    stats_to_dict,
    tokenize,
)
from repro.repository.entry import ModelDescription
from repro.repository.search import SearchIndex
from repro.repository.service import RepositoryService
from repro.repository.template import EntryType
from repro.repository.versioning import Version
from repro.repository.wiki_sync import render_wiki_pages
from tests.repository.test_entry import minimal_entry


def corpus_service(entries) -> RepositoryService:
    service = RepositoryService(MemoryBackend())
    service.add_many(entries)
    return service


class TestAst:
    def test_q_builders_and_combinators(self):
        q = Q.text("tree sync") & Q.type(EntryType.PRECISE)
        assert isinstance(q, And)
        q = Q.property("correct", holds=False) | ~Q.author("Ann")
        assert isinstance(q, Or)
        assert isinstance(q.parts[1], Not)
        assert q.parts[0] == HasProperty("correct", False)

    def test_text_tokenises_its_query(self):
        assert Q.text("The Tree, and the SYNC!") == Text(("tree", "sync"))

    def test_collect_terms_polarity(self):
        q = Q.text("alpha") & ~Q.text("beta") & ~~Q.text("gamma")
        assert collect_terms(q) == ["alpha", "beta", "gamma"]
        assert collect_positive_terms(q) == ["alpha", "gamma"]

    def test_plan_accepts_string_and_none(self):
        assert plan("tree").where == Text(("tree",))
        assert plan(None).where == Q.all()

    def test_plan_validation(self):
        with pytest.raises(StorageError, match="sort"):
            plan(Q.all(), sort="shoe-size")
        with pytest.raises(StorageError, match="offset"):
            plan(Q.all(), offset=-1)
        with pytest.raises(StorageError, match="limit"):
            plan(Q.all(), limit=-2)

    def test_entry_terms_field_boosts(self):
        entry = minimal_entry(title="ZYGOTE STUDY",
                              overview="A zygote appears.",
                              discussion="zygote zygote")
        weights = entry_terms(entry)
        # title(4) + overview(2) + discussion(2 * 1)
        assert weights["zygote"] == pytest.approx(8.0)

    def test_tokenize_is_reexported_unchanged(self):
        assert tokenize("The Models of a Tree") == ["models", "tree"]


class TestWireCodec:
    """The Q-AST / plan / stats / result JSON round-trip the serving
    layer ships (see repro.repository.server / client)."""

    ATOMS = [
        Q.all(),
        Q.text("tree sync"),
        Q.text("the of"),  # all stopwords: empty terms survive the wire
        Q.type(EntryType.INDUSTRIAL),
        Q.property("correct"),
        Q.property("undoable", holds=False),
        Q.author("Ann B."),
        Q.reviewed(),
        Q.provisional(),
    ]

    def test_every_atom_round_trips(self):
        for query in self.ATOMS:
            wired = query_to_dict(query)
            assert json.loads(json.dumps(wired)) == wired  # JSON-ready
            assert query_from_dict(wired) == query

    def test_nested_composition_round_trips(self):
        query = (Q.text("tree") & ~(Q.author("Ann") | Q.reviewed())
                 & Q.property("correct", holds=True)) | Q.text("graph")
        assert query_from_dict(query_to_dict(query)) == query

    def test_plan_round_trips(self):
        original = plan(Q.text("tree") & Q.provisional(),
                        sort="identifier", offset=4, limit=9)
        rebuilt = plan_from_dict(json.loads(
            json.dumps(plan_to_dict(original))))
        assert rebuilt == original
        unbounded = plan_from_dict(plan_to_dict(plan("tree")))
        assert unbounded.limit is None

    def test_plan_defaults_apply(self):
        rebuilt = plan_from_dict({"where": {"op": "all"}})
        assert rebuilt == plan(None)

    def test_plan_validators_rerun_on_decode(self):
        with pytest.raises(StorageError, match="sort"):
            plan_from_dict({"where": {"op": "all"}, "sort": "shoe-size"})
        with pytest.raises(StorageError, match="offset"):
            plan_from_dict({"where": {"op": "all"}, "offset": "ten"})

    def test_unknown_op_fails_loudly(self):
        with pytest.raises(StorageError, match="unknown query op"):
            query_from_dict({"op": "regex", "pattern": ".*"})
        # A bare string iterates per character — must be rejected, not
        # silently decoded as ('t','r','e','e').
        with pytest.raises(StorageError, match="list of strings"):
            query_from_dict({"op": "text", "terms": "tree"})
        # bool("false") is True — strings must not coerce silently.
        with pytest.raises(StorageError, match="boolean"):
            query_from_dict({"op": "reviewed", "reviewed": "false"})
        with pytest.raises(StorageError, match="string"):
            query_from_dict({"op": "author", "author": 123})
        with pytest.raises(StorageError, match="string"):
            query_from_dict({"op": "property", "name": 7})
        with pytest.raises(StorageError, match="not an object"):
            query_from_dict(["op", "all"])
        with pytest.raises(StorageError, match="malformed"):
            query_from_dict({"op": "type", "type": "no-such-type"})
        with pytest.raises(StorageError, match="malformed"):
            query_from_dict({"op": "and"})  # parts missing

    def test_stats_round_trip(self):
        stats = QueryStats(7, {"tree": 3, "sync": 1})
        rebuilt = stats_from_dict(json.loads(
            json.dumps(stats_to_dict(stats))))
        assert rebuilt.document_count == 7
        assert rebuilt.document_frequency == {"tree": 3, "sync": 1}
        assert rebuilt.idf("tree") == stats.idf("tree")

    def test_result_round_trips_with_exact_scores(self):
        service = corpus_service([
            minimal_entry(title=f"ENTRY {index}",
                          overview=f"About trees, variant {index}.")
            for index in range(5)
        ])
        result = service.query("trees variant", limit=3)
        rebuilt = result_from_dict(json.loads(
            json.dumps(result_to_dict(result))))
        assert rebuilt.total == result.total
        assert rebuilt.facets == result.facets
        assert [hit.identifier for hit in rebuilt.hits] == \
            [hit.identifier for hit in result.hits]
        # Exact, not approx: JSON floats survive the round-trip.
        assert [hit.score for hit in rebuilt.hits] == \
            [hit.score for hit in result.hits]
        assert [hit.entry for hit in rebuilt.hits] == \
            [hit.entry for hit in result.hits]

    def test_result_decode_rejects_junk(self):
        with pytest.raises(StorageError, match="not an object"):
            result_from_dict(None)
        with pytest.raises(StorageError, match="malformed query result"):
            result_from_dict({"hits": [{"identifier": "x"}],
                              "total": 1, "facets": {}})


class TestMatching:
    @pytest.fixture()
    def service(self):
        return corpus_service([
            minimal_entry(title="ALPHA", overview="A tree walk.",
                          types=(EntryType.PRECISE,),
                          authors=("Ann", "Bob")),
            minimal_entry(title="BETA", overview="Graphs and lattices.",
                          types=(EntryType.SKETCH,),
                          properties=(), authors=("Cleo",)),
            minimal_entry(title="GAMMA", overview="A tree of graphs.",
                          types=(EntryType.PRECISE, EntryType.INDUSTRIAL),
                          version=Version(1, 0), reviewers=("Rex",),
                          authors=("Ann",)),
        ])

    def test_text_is_or_of_terms(self, service):
        assert service.query(Q.text("tree lattices"),
                             sort="identifier").identifiers == \
            ["alpha", "beta", "gamma"]

    def test_all_stopword_text_matches_nothing(self, service):
        assert service.query(Q.text("the and of")).total == 0

    def test_structured_atoms(self, service):
        assert service.query(Q.type(EntryType.SKETCH)).identifiers == \
            ["beta"]
        assert service.query(Q.author("Ann"),
                             sort="identifier").identifiers == \
            ["alpha", "gamma"]
        assert service.query(Q.property("correct")).total == 2
        assert service.query(Q.property("correct", holds=False)).total == 0
        assert service.query(Q.reviewed()).identifiers == ["gamma"]
        assert service.query(Q.provisional(),
                             sort="identifier").identifiers == \
            ["alpha", "beta"]

    def test_boolean_composition(self, service):
        q = Q.text("tree") & ~Q.type(EntryType.INDUSTRIAL)
        assert service.query(q).identifiers == ["alpha"]
        q = Q.type(EntryType.SKETCH) | Q.reviewed()
        assert service.query(q, sort="identifier").identifiers == \
            ["beta", "gamma"]

    def test_negated_text_filters_without_ranking(self, service):
        result = service.query(~Q.text("tree"), sort="identifier")
        assert result.identifiers == ["beta"]
        assert result.hits[0].score == 0.0

    def test_default_query_is_everything(self, service):
        assert service.query().total == 3

    def test_facets_cover_all_matches(self, service):
        result = service.query(Q.text("tree"), limit=1)
        assert result.total == 2
        assert result.facets["type"] == {"PRECISE": 2, "INDUSTRIAL": 1}
        assert result.facets["author"] == {"Ann": 2, "Bob": 1}
        assert result.facets["review"] == {"provisional": 1, "reviewed": 1}
        assert result.facets["property"] == {"correct": 2}

    def test_pagination_slices_but_totals_do_not_change(self, service):
        everything = service.query(sort="identifier")
        page = service.query(sort="identifier", offset=1, limit=1)
        assert page.identifiers == everything.identifiers[1:2]
        assert page.total == everything.total == 3
        assert page.facets == everything.facets
        assert service.query(offset=99).identifiers == []
        assert service.query(limit=0).identifiers == []


class TestIdfRanking:
    """The satellite regression: ubiquitous terms stop dominating."""

    def test_idf_formula(self):
        assert inverse_document_frequency(10, 10) == pytest.approx(1.0)
        assert inverse_document_frequency(0, 10) > 3.0

    def test_rare_on_topic_term_outranks_ubiquitous_filler(self):
        # "model" appears in every entry; only "lattice" discriminates.
        # generic has "model" twice in its *title* (old TF scoring:
        # weight 8, unbeatable); on-topic has the rare term in its
        # overview only (TF weight 4 in total).
        # The default models field mentions "model" too; neutralise it
        # so the weights are exactly the crafted ones.
        plain = (ModelDescription("M", "Left side."),
                 ModelDescription("N", "Right side."))
        filler = [minimal_entry(title=f"FILLER {index}", models=plain,
                                overview="A model in passing.")
                  for index in range(16)]
        generic = minimal_entry(title="MODEL MODEL OVERVIEW",
                                models=plain,
                                overview="Generic filler text.")
        on_topic = minimal_entry(title="TOPIC", models=plain,
                                 overview="A lattice model.")
        service = corpus_service(filler + [generic, on_topic])

        hits = service.query(Q.text("lattice model")).hits
        assert hits[0].identifier == "topic"
        # ...whereas raw TF would have ranked the title-stuffed entry
        # first: its "model" weight alone beats the on-topic entry's
        # combined query-term weights.
        generic_tf = entry_terms(generic).get("model", 0.0)
        topic_weights = entry_terms(on_topic)
        topic_tf = (topic_weights.get("model", 0.0)
                    + topic_weights.get("lattice", 0.0))
        assert generic_tf > topic_tf

    def test_search_index_search_is_idf_weighted(self):
        index = SearchIndex()
        for position in range(16):
            index.add_entry(minimal_entry(title=f"FILLER {position}",
                                          overview="A model in passing."))
        index.add_entry(minimal_entry(title="COMMON",
                                      overview="model model model"))
        index.add_entry(minimal_entry(title="RARE",
                                      overview="a single zygote model"))
        hits = index.search("zygote model", limit=2)
        # Raw TF scores COMMON 6.0 vs RARE 4.0; IDF flips them.
        assert [hit.identifier for hit in hits] == ["rare", "common"]


class TestSearchIndexPersistence:
    def build_index(self, entries) -> SearchIndex:
        service = corpus_service(entries)
        return service.enable_search()

    def test_save_load_roundtrip(self, tmp_path):
        entries = [minimal_entry(title=f"ENTRY {index}",
                                 overview=f"Unique token tok{index}.")
                   for index in range(4)]
        index = self.build_index(entries)
        snapshot = tmp_path / "index.json"
        index.save(snapshot, change_counter=17)

        loaded = SearchIndex.load(snapshot, expected_change_counter=17)
        assert loaded is not None
        assert len(loaded) == 4
        assert [hit.identifier for hit in loaded.search("tok2")] == \
            ["entry-2"]
        assert loaded.latest_entries() == index.latest_entries()

    def test_stale_counter_rejected(self, tmp_path):
        index = self.build_index([minimal_entry()])
        snapshot = tmp_path / "index.json"
        index.save(snapshot, change_counter=3)
        assert SearchIndex.load(snapshot,
                                expected_change_counter=4) is None

    def test_missing_or_corrupt_snapshot_rejected(self, tmp_path):
        assert SearchIndex.load(tmp_path / "nope.json",
                                expected_change_counter=0) is None
        bad = tmp_path / "bad.json"
        bad.write_text("{ not json")
        assert SearchIndex.load(bad, expected_change_counter=0) is None
        wrong_format = tmp_path / "fmt.json"
        wrong_format.write_text(json.dumps({"format": 99,
                                            "change_counter": 0}))
        assert SearchIndex.load(wrong_format,
                                expected_change_counter=0) is None

    def test_malformed_hydration_means_rebuild(self, tmp_path):
        """Right format and counter, junk contents: entries that fail
        validation and postings with non-numeric weights both mean
        "rebuild", not a crash."""
        index = self.build_index([minimal_entry()])
        snapshot = tmp_path / "index.json"
        index.save(snapshot, change_counter=0)
        payload = json.loads(snapshot.read_text())

        junk_entries = dict(payload, entries=[{"title": "NO SUCH SHAPE"}])
        snapshot.write_text(json.dumps(junk_entries))
        assert SearchIndex.load(snapshot,
                                expected_change_counter=0) is None

        junk_postings = dict(payload,
                             postings={"tok": {"demo-example": "heavy"}})
        snapshot.write_text(json.dumps(junk_postings))
        assert SearchIndex.load(snapshot,
                                expected_change_counter=0) is None

    def test_unexpected_hydration_crash_propagates(self, tmp_path,
                                                   monkeypatch):
        """Behaviour change with the narrowed catch: load() used to
        swallow *every* exception as "rebuild", hiding real bugs.  An
        exception outside the malformed-snapshot set now surfaces."""
        from repro.repository.entry import ExampleEntry

        index = self.build_index([minimal_entry()])
        snapshot = tmp_path / "index.json"
        index.save(snapshot, change_counter=0)

        def boom(data):
            raise RuntimeError("hydration bug, not a bad snapshot")

        monkeypatch.setattr(ExampleEntry, "from_dict", boom)
        with pytest.raises(RuntimeError):
            SearchIndex.load(snapshot, expected_change_counter=0)


class TestChangeCounters:
    def test_memory_has_no_durable_counter(self):
        """A fresh process's fresh MemoryBackend restarts any counter,
        so an ephemeral count could falsely validate an old snapshot —
        the only safe answer is None (no snapshot reuse)."""
        backend = MemoryBackend()
        backend.add(minimal_entry())
        assert backend.change_counter() is None

    @pytest.mark.parametrize("kind", ["file", "sqlite"])
    def test_counter_increases_on_every_write(self, kind, tmp_path):
        if kind == "file":
            backend = FileBackend(tmp_path / "repo")
        else:
            backend = SQLiteBackend(tmp_path / "repo.db")
        seen = [backend.change_counter()]

        def bumped():
            seen.append(backend.change_counter())
            assert seen[-1] > seen[-2]

        backend.add(minimal_entry())
        bumped()
        backend.add_version(minimal_entry(version=Version(0, 2)))
        bumped()
        backend.replace_latest(minimal_entry(version=Version(0, 2),
                                             overview="Patched."))
        bumped()
        backend.add_many([minimal_entry(title="OTHER")])
        bumped()
        backend.close()

    def test_durable_counters_survive_reopen(self, tmp_path):
        backend = FileBackend(tmp_path / "files")
        backend.add(minimal_entry())
        counter = backend.change_counter()
        assert FileBackend(tmp_path / "files").change_counter() == counter

        with SQLiteBackend(tmp_path / "repo.db") as db:
            db.add(minimal_entry())
            counter = db.change_counter()
        with SQLiteBackend(tmp_path / "repo.db") as db:
            assert db.change_counter() == counter


class TestPersistentServiceIndex:
    """The acceptance bit: no rebuild across process restarts."""

    def entries(self):
        return [minimal_entry(title=f"ENTRY {index}",
                              overview=f"Unique token tok{index}.")
                for index in range(5)]

    def test_snapshot_restored_without_rebuild(self, tmp_path, monkeypatch):
        snapshot = tmp_path / "index.json"
        first = RepositoryService(FileBackend(tmp_path / "repo"),
                                  index_path=snapshot)
        first.add_many(self.entries())
        first.enable_search()
        first.close()  # saves the snapshot
        assert snapshot.is_file()

        # "New process": same durable backend, fresh service.  A
        # rebuild would call SearchIndex.build — forbid it outright.
        second = RepositoryService(FileBackend(tmp_path / "repo"),
                                   index_path=snapshot)
        monkeypatch.setattr(
            SearchIndex, "build",
            lambda self, store: pytest.fail("index was rebuilt"))
        index = second.enable_search()
        assert len(index) == 5
        assert second.query("tok3").identifiers == ["entry-3"]

    def test_restored_index_still_tracks_writes(self, tmp_path):
        snapshot = tmp_path / "index.json"
        first = RepositoryService(FileBackend(tmp_path / "repo"),
                                  index_path=snapshot)
        first.add_many(self.entries())
        first.enable_search()
        first.close()

        second = RepositoryService(FileBackend(tmp_path / "repo"),
                                   index_path=snapshot)
        second.enable_search()
        second.add(minimal_entry(title="LATECOMER",
                                 overview="token tokx"))
        assert second.query("tokx").identifiers == ["latecomer"]

    def test_stale_snapshot_forces_rebuild(self, tmp_path):
        snapshot = tmp_path / "index.json"
        first = RepositoryService(FileBackend(tmp_path / "repo"),
                                  index_path=snapshot)
        first.add_many(self.entries())
        first.enable_search()
        first.close()

        # A write lands behind the snapshot's back (other process).
        behind = FileBackend(tmp_path / "repo")
        behind.add(minimal_entry(title="SNEAKED",
                                 overview="token toky"))

        second = RepositoryService(FileBackend(tmp_path / "repo"),
                                   index_path=snapshot)
        index = second.enable_search()
        assert len(index) == 6  # rebuilt, not restored
        assert second.query("toky").identifiers == ["sneaked"]

    def test_save_index_reports_what_it_did(self, tmp_path):
        service = RepositoryService(FileBackend(tmp_path / "a"))
        assert not service.save_index()  # no path configured
        with_path = RepositoryService(
            FileBackend(tmp_path / "b"), index_path=tmp_path / "index.json")
        assert not with_path.save_index()  # no live index yet
        with_path.add(minimal_entry())
        with_path.enable_search()
        assert with_path.save_index()

    def test_memory_backends_never_save_snapshots(self, tmp_path):
        """No durable counter -> no snapshot file (it could never be
        validated by a later process)."""
        service = RepositoryService(
            MemoryBackend(), index_path=tmp_path / "index.json")
        service.add(minimal_entry())
        service.enable_search()
        assert not service.save_index()
        service.close()
        assert not (tmp_path / "index.json").exists()


class TestLazyEnable:
    def test_query_lazily_enables_index_on_plain_backends(self):
        service = RepositoryService(MemoryBackend())
        service.add(minimal_entry())
        assert service.search_index is None
        assert service.query("demo").total == 1
        assert service.search_index is not None  # enabled on first use

    def test_query_pushes_down_without_an_index(self, tmp_path):
        service = RepositoryService(SQLiteBackend(tmp_path / "repo.db"))
        service.add(minimal_entry())
        assert service.query("demo").total == 1
        assert service.search_index is None  # SQL did the work
        service.close()


class TestConsumersThroughQuery:
    def populated_repo(self):
        repo = CuratedRepository(MemoryBackend())
        repo.store.add_many([
            minimal_entry(title="ALPHA", overview="A tree walk."),
            minimal_entry(title="BETA", overview="Graphs.",
                          version=Version(1, 0), reviewers=("Rex",)),
        ])
        return repo

    def test_curated_repository_query(self):
        repo = self.populated_repo()
        assert repo.query(Q.reviewed()).identifiers == ["beta"]
        assert repo.query("tree").identifiers == ["alpha"]

    def test_render_repository_markdown_with_query(self):
        repo = self.populated_repo()
        document = render_repository_markdown(repo.store,
                                              query=Q.reviewed())
        assert "1 examples" in document
        assert "BETA" in document and "ALPHA" not in document

    def test_archive_manuscript_with_query(self):
        repo = self.populated_repo()
        manuscript = archive_manuscript(repo.store, query=Q.reviewed())
        assert manuscript["entry_count"] == 1
        assert manuscript["reviewers"] == ["Rex"]

    def test_render_wiki_pages_with_query(self):
        repo = self.populated_repo()
        pages = render_wiki_pages(repo.store, Q.text("tree"))
        assert list(pages) == ["alpha"]
        assert pages["alpha"].startswith("+ ALPHA")
