"""Concurrent access: the lock, the sqlite fix, and the hardened facade.

Three layers of guarantees:

* :class:`ReadWriteLock` — shared readers, exclusive writers, writer
  preference, writer-reentrant reads;
* :class:`SQLiteBackend` — file-backed databases serve reads from
  per-thread read-only connections, so readers neither block on the
  write lock nor observe uncommitted transactions (the sharded fan-out
  path relies on this);
* :class:`RepositoryService` — parallel writers lose no updates and
  parallel readers can never cache a stale snapshot, over sharded and
  replicated backends alike.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.errors import StorageError
from repro.repository.backends import (
    FileBackend,
    MemoryBackend,
    ReplicatedBackend,
    ShardedBackend,
    SQLiteBackend,
)
from repro.repository.concurrency import ReadWriteLock
from repro.repository.service import RepositoryService
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry
from tests.repository.test_scaling_backends import assert_same_contents

WAIT = 5.0  # generous upper bound for anything that should be instant


def run_threads(targets):
    """Run targets to completion; re-raise the first worker exception."""
    errors: list[BaseException] = []

    def wrap(target):
        def runner():
            try:
                target()
            except BaseException as error:  # noqa: BLE001 - re-raised
                errors.append(error)
        return runner

    threads = [threading.Thread(target=wrap(target)) for target in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(WAIT * 4)
    assert not any(thread.is_alive() for thread in threads), "deadlock"
    if errors:
        raise errors[0]


# ----------------------------------------------------------------------
# The lock itself.
# ----------------------------------------------------------------------

class TestReadWriteLock:
    def test_readers_share(self):
        lock = ReadWriteLock()
        both_in = threading.Barrier(2, timeout=WAIT)

        def reader():
            with lock.read_locked():
                both_in.wait()  # both threads inside simultaneously

        run_threads([reader, reader])

    def test_writer_excludes_readers(self):
        lock = ReadWriteLock()
        observed = []
        writer_in = threading.Event()

        def writer():
            with lock.write_locked():
                writer_in.set()
                time.sleep(0.05)
                observed.append("write-done")

        def reader():
            writer_in.wait(WAIT)
            with lock.read_locked():
                observed.append("read")

        run_threads([writer, reader])
        assert observed == ["write-done", "read"]

    def test_writers_exclude_each_other(self):
        lock = ReadWriteLock()
        depth = [0]

        def writer():
            for _round in range(50):
                with lock.write_locked():
                    depth[0] += 1
                    assert depth[0] == 1
                    depth[0] -= 1

        run_threads([writer] * 4)

    def test_writer_not_starved_by_reader_stream(self):
        lock = ReadWriteLock()
        stop = threading.Event()
        wrote = threading.Event()

        def reader():
            while not stop.is_set():
                with lock.read_locked():
                    time.sleep(0.001)

        def writer():
            with lock.write_locked():
                wrote.set()

        readers = [threading.Thread(target=reader) for _reader in range(4)]
        for thread in readers:
            thread.start()
        try:
            time.sleep(0.02)  # readers are saturating the lock
            writing = threading.Thread(target=writer)
            writing.start()
            assert wrote.wait(WAIT), "writer starved by readers"
            writing.join(WAIT)
        finally:
            stop.set()
            for thread in readers:
                thread.join(WAIT)

    def test_writer_may_reenter_both_ways(self):
        lock = ReadWriteLock()
        with lock.write_locked():
            with lock.read_locked():  # subscriber reading back
                with lock.write_locked():
                    pass

    def test_reader_reentry_survives_a_waiting_writer(self):
        lock = ReadWriteLock()
        reader_in = threading.Event()
        writer_waiting = threading.Event()
        release_reader = threading.Event()

        def reader():
            with lock.read_locked():
                reader_in.set()
                writer_waiting.wait(WAIT)
                with lock.read_locked():  # must not deadlock
                    release_reader.set()

        def writer():
            reader_in.wait(WAIT)
            writer_waiting.set()
            with lock.write_locked():
                assert release_reader.is_set()

        run_threads([reader, writer])

    def test_waiting_writer_blocks_fresh_readers(self):
        """Writer preference, sharply: once a writer is *waiting*, a
        brand-new reader queues behind it even though readers currently
        hold the lock — the property the lock-discipline analysis rule
        assumes when it lets the service hold the RW lock across
        backend writes."""
        lock = ReadWriteLock()
        order = []
        reader_in = threading.Event()
        writer_queued = threading.Event()

        def first_reader():
            with lock.read_locked():
                reader_in.set()
                writer_queued.wait(WAIT)
                time.sleep(0.05)  # window for a misordered second reader

        def writer():
            reader_in.wait(WAIT)
            with lock.write_locked():
                order.append("writer")

        def second_reader():
            reader_in.wait(WAIT)
            deadline = time.monotonic() + WAIT
            while lock._waiting_writers == 0:
                assert time.monotonic() < deadline, "writer never queued"
                time.sleep(0.001)
            writer_queued.set()
            with lock.read_locked():
                order.append("reader")

        run_threads([first_reader, writer, second_reader])
        assert order == ["writer", "reader"]

    def test_writer_reentrant_read_release_keeps_the_write_lock(self):
        """Releasing a nested read taken by the writing thread is depth
        bookkeeping only — the write lock stays exclusively held."""
        lock = ReadWriteLock()
        entered = threading.Event()

        def outside_reader():
            with lock.read_locked():
                entered.set()

        with lock.write_locked():
            with lock.read_locked():
                pass  # nested read taken and released by the writer
            probe = threading.Thread(target=outside_reader)
            probe.start()
            assert not entered.wait(0.1), \
                "reader slipped in: reentrant read release freed the lock"
        probe.join(WAIT)
        assert entered.is_set()

    def test_nested_write_release_is_depth_counted(self):
        lock = ReadWriteLock()
        entered = threading.Event()

        def outside_reader():
            with lock.read_locked():
                entered.set()

        lock.acquire_write()
        lock.acquire_write()
        lock.release_write()  # inner release: still exclusively held
        probe = threading.Thread(target=outside_reader)
        probe.start()
        assert not entered.wait(0.1), "inner release_write freed the lock"
        lock.release_write()
        probe.join(WAIT)
        assert entered.is_set()

    def test_upgrade_attempt_fails_fast(self):
        lock = ReadWriteLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError):
                lock.acquire_write()

    def test_unbalanced_release_fails(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()


# ----------------------------------------------------------------------
# SQLite across threads (the sharded fan-out bugfix).
# ----------------------------------------------------------------------

class TestSQLiteThreadSafety:
    def test_file_backed_reads_bypass_the_write_lock(self, tmp_path):
        """Regression: reads used to serialise on the single write lock,
        so a stalled writer blocked every fan-out reader."""
        backend = SQLiteBackend(tmp_path / "repo.db")
        backend.add(minimal_entry())
        got = []
        with backend._lock:  # a writer mid-transaction
            thread = threading.Thread(
                target=lambda: got.append(backend.get("demo-example")))
            thread.start()
            thread.join(WAIT)
            assert not thread.is_alive(), "reader blocked on write lock"
        assert got[0].identifier == "demo-example"
        backend.close()

    def test_reader_threads_get_their_own_connections(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "repo.db")
        backend.add(minimal_entry())
        seen = []

        def reader():
            backend.get("demo-example")
            seen.append(id(backend._read_conn()))

        run_threads([reader, reader])
        assert len(set(seen)) == 2
        backend.close()

    def test_read_connections_are_read_only(self, tmp_path):
        import sqlite3
        backend = SQLiteBackend(tmp_path / "repo.db")
        backend.add(minimal_entry())
        backend.get("demo-example")
        with pytest.raises(sqlite3.OperationalError):
            backend._read_conn().execute("DELETE FROM entries")
        backend.close()

    def test_memory_database_is_shared_across_threads(self):
        backend = SQLiteBackend()  # :memory: stays on one connection
        backend.add(minimal_entry())
        got = []
        thread = threading.Thread(
            target=lambda: got.append(backend.get("demo-example")))
        thread.start()
        thread.join(WAIT)
        assert got[0].title == "DEMO EXAMPLE"
        backend.close()

    def test_parallel_readers_and_writer(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "repo.db")
        backend.add(minimal_entry())
        rounds = 20

        def writer():
            for minor in range(2, rounds + 2):
                backend.add_version(
                    minimal_entry(version=Version(0, minor)))

        def reader():
            for _round in range(rounds * 2):
                versions = backend.versions("demo-example")
                # Histories only ever grow, oldest first.
                assert versions[0] == Version(0, 1)
                assert versions == sorted(versions)
                entry = backend.get("demo-example")
                assert entry.version == versions[-1] or \
                    entry.version > versions[-1]

        run_threads([writer] + [reader] * 4)
        assert backend.versions("demo-example")[-1] == \
            Version(0, rounds + 1)
        backend.close()

    def test_close_after_cross_thread_reads(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "repo.db")
        backend.add(minimal_entry())
        run_threads([lambda: backend.get("demo-example")] * 3)
        backend.close()  # closes every per-thread connection
        with pytest.raises(Exception):
            backend.get("demo-example")


# ----------------------------------------------------------------------
# The facade under contention.
# ----------------------------------------------------------------------

def batch_for(worker: int, count: int):
    return [minimal_entry(title=f"W{worker} ENTRY {index}")
            for index in range(count)]


class TestServiceConcurrency:
    def test_parallel_writers_lose_nothing_on_sharded_sqlite(self, tmp_path):
        backend = ShardedBackend.create("sqlite", tmp_path / "cluster",
                                        shard_count=4)
        service = RepositoryService(backend)
        workers, per_worker = 6, 20

        def writer(worker: int):
            def run():
                for entry in batch_for(worker, per_worker):
                    service.add(entry)
            return run

        run_threads([writer(worker) for worker in range(workers)])
        assert service.entry_count() == workers * per_worker
        # Cache and backend agree on every single entry.
        for worker in range(workers):
            for entry in batch_for(worker, per_worker):
                assert service.get(entry.identifier) == \
                    backend.get(entry.identifier)
        service.close()

    def test_contended_add_version_loses_no_update(self):
        service = RepositoryService(MemoryBackend())
        service.add(minimal_entry())
        successes = [0] * 4
        attempts_per_thread = 10

        def contender(slot: int):
            def run():
                for _attempt in range(attempts_per_thread):
                    while True:
                        latest = service.versions("demo-example")[-1]
                        candidate = Version(0, latest.minor + 1)
                        try:
                            service.add_version(
                                minimal_entry(version=candidate))
                        except StorageError:
                            continue  # lost the race; re-read and retry
                        successes[slot] += 1
                        break
            return run

        run_threads([contender(slot) for slot in range(4)])
        # Every success bumped the history by exactly one: no two
        # writers ever landed the same version number.
        total = sum(successes)
        assert total == 4 * attempts_per_thread
        assert service.versions("demo-example") == \
            [Version(0, minor) for minor in range(1, total + 2)]
        service.close()

    def test_readers_never_cache_a_stale_snapshot(self):
        service = RepositoryService(MemoryBackend())
        service.add(minimal_entry())
        rounds = 60
        stop = threading.Event()

        def writer():
            try:
                for round_number in range(rounds):
                    service.replace_latest(
                        minimal_entry(overview=f"round {round_number}"))
            finally:
                stop.set()

        def reader():
            while not stop.is_set():
                service.get("demo-example")

        run_threads([writer] + [reader] * 4)
        # The race this guards: a reader fetches, the writer lands,
        # the reader caches its stale fetch over the fresh value.
        assert service.get("demo-example").overview == \
            f"round {rounds - 1}"
        assert service.get("demo-example") == \
            service.backend.get("demo-example")
        service.close()

    def test_replicated_service_converges(self, tmp_path):
        primary = SQLiteBackend(tmp_path / "primary.db")
        replica = FileBackend(tmp_path / "replica")
        service = RepositoryService(ReplicatedBackend(primary, replica))

        def writer(worker: int):
            def run():
                service.add_many(batch_for(worker, 10))
            return run

        def reader():
            for _round in range(20):
                identifiers = service.identifiers()
                if identifiers:
                    service.get_many(identifiers[:8])

        run_threads([writer(worker) for worker in range(4)] + [reader] * 2)
        assert service.entry_count() == 40
        assert_same_contents(primary, replica)
        # Synchronous mirroring under the write lock left no repair work.
        report = service.backend.anti_entropy()
        assert not report.changed
        assert report.conflicts == []
        service.close()

    def test_search_enable_and_query_race_with_writers(self):
        """Lazy index builds + queries are safe against live writers.

        Two races this pins: a write landing between the index build
        and its event subscription would go permanently unindexed, and
        a query iterating the index while a subscriber upserts would
        blow up on concurrent dict mutation.
        """
        service = RepositoryService(MemoryBackend())
        service.add_many(batch_for(9, 20))
        stop = threading.Event()
        writes = 40

        def writer():
            try:
                for index in range(writes):
                    service.add(minimal_entry(
                        title=f"RACE ENTRY {index}",
                        overview="Contended racing snapshot."))
            finally:
                stop.set()

        def searcher():
            while not stop.is_set():
                service.query("racing snapshot")

        run_threads([writer] + [searcher] * 3)
        hits = service.query("racing", limit=writes + 5).hits
        assert len(hits) == writes
        service.close()

    def test_search_tracks_concurrent_writes(self):
        service = RepositoryService(MemoryBackend())
        service.add(minimal_entry())
        service.enable_search()

        def writer(worker: int):
            def run():
                for index in range(8):
                    service.add(minimal_entry(
                        title=f"XQ{worker}N{index} TOPIC",
                        overview=f"Unique token xq{worker}n{index}."))
            return run

        run_threads([writer(worker) for worker in range(3)])
        for worker in range(3):
            for index in range(8):
                hits = service.query(f"xq{worker}n{index}").hits
                assert [hit.identifier for hit in hits] == \
                    [f"xq{worker}n{index}-topic"]
        service.close()
