"""Query pushdown conformance: every backend answers identically.

The acceptance contract of the unified query API: for the same
:class:`~repro.repository.query.QueryPlan`, memory, file, sqlite,
sharded and replicated backends must return the *same*
:class:`~repro.repository.query.QueryResult` — identifiers, order,
total, facets and entries — whether the plan runs through the native
pushdown (SQLite's SQL compilation, the sharded fan-out with global
statistics, the replicated read routing) or the shared in-Python
evaluator.  Mirrors the structure of
``tests/repository/test_backends.py``: one matrix of plans, one
fixture list of backends, every combination checked against the
in-memory reference.
"""

from __future__ import annotations

import pytest

from repro.repository.backends import (
    FileBackend,
    MemoryBackend,
    ReplicatedBackend,
    ShardedBackend,
    SQLiteBackend,
    StorageBackend,
)
from repro.repository.entry import Comment, PropertyClaim
from repro.repository.query import Q, plan
from repro.repository.service import RepositoryService
from repro.repository.template import EntryType
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry

ALL_BACKENDS = [
    "memory",
    "file",
    "sqlite",
    "sharded-sqlite",
    "sharded-memory",
    "replicated",
    # The serving layer: every plan serialised through the query wire
    # codec, executed server-side, the result rehydrated — and still
    # identical to the in-memory reference.
    "http",
]

_TYPES = (EntryType.PRECISE, EntryType.SKETCH, EntryType.INDUSTRIAL,
          EntryType.BENCHMARK)
_AUTHORS = ("Ann", "Bob", "Cleo")
_TOPICS = ("tree rotation", "schema mapping", "graph alignment",
           "tree pruning", "list merging")


def corpus():
    """~24 varied entries: types, properties, authors, review states."""
    entries = []
    for index in range(24):
        types = (_TYPES[index % 4],)
        if index % 7 == 0 and types != (EntryType.SKETCH,):
            types += (EntryType.INDUSTRIAL,)
        properties = [PropertyClaim("correct", holds=index % 3 != 0)]
        if index % 2 == 0:
            properties.append(PropertyClaim("hippocraticness",
                                            holds=index % 4 == 0))
        entries.append(minimal_entry(
            title=f"EXAMPLE {index}",
            types=types,
            overview=f"About {_TOPICS[index % 5]}, variant {index}.",
            discussion=f"Discussion of {_TOPICS[(index + 2) % 5]}.",
            authors=(_AUTHORS[index % 3],
                     _AUTHORS[(index + 1) % 3])[:1 + index % 2],
            properties=tuple(properties),
        ))
    return entries


def populate(backend: StorageBackend) -> None:
    """Load the corpus, then age it: the query layer must see exactly
    the *latest* state (new versions, reviews, in-place comments)."""
    entries = corpus()
    backend.add_many(entries)
    for entry in entries[:6]:
        backend.add_version(entry.with_version(Version(0, 2)))
    for entry in entries[6:10]:  # reviewed: different text, 1.0
        backend.add_version(minimal_entry(
            title=entry.title,
            types=entry.types,
            overview=entry.overview + " Now reviewed and polished.",
            authors=entry.authors,
            properties=entry.properties,
            version=Version(1, 0),
            reviewers=("Rex",),
        ))
    commented = backend.get(entries[12].identifier)
    backend.replace_latest(commented.with_comment(
        Comment("Ann", "2014-03-28", "A tree-shaped remark.")))


def make_backend(kind: str, tmp_path) -> StorageBackend:
    if kind == "memory":
        return MemoryBackend()
    if kind == "file":
        return FileBackend(tmp_path / "repo")
    if kind == "sqlite":
        return SQLiteBackend(tmp_path / "repo.db")
    if kind == "sharded-sqlite":
        return ShardedBackend.create("sqlite", tmp_path / "shards",
                                     shard_count=3)
    if kind == "sharded-memory":
        return ShardedBackend([MemoryBackend(), MemoryBackend()])
    if kind == "http":
        from tests.repository.test_backends import ServedBackend
        return ServedBackend(MemoryBackend())
    return ReplicatedBackend(SQLiteBackend(tmp_path / "primary.db"),
                             FileBackend(tmp_path / "replica"))


@pytest.fixture(params=ALL_BACKENDS)
def backend(request, tmp_path):
    built = make_backend(request.param, tmp_path)
    populate(built)
    yield built
    built.close()


@pytest.fixture()
def reference():
    built = MemoryBackend()
    populate(built)
    return built


#: The conformance matrix: ~20 plans spanning every atom, the boolean
#: combinators, both sort orders, and the pagination edge cases.
PLANS = [
    plan(None),
    plan(None, sort="identifier"),
    plan("tree"),
    plan("tree rotation pruning"),
    plan("the and of"),  # all stopwords: matches nothing
    plan(Q.type(EntryType.SKETCH)),
    plan(Q.type(EntryType.INDUSTRIAL), sort="identifier"),
    plan(Q.property("correct")),
    plan(Q.property("correct", holds=False)),
    plan(Q.property("hippocraticness", holds=True), sort="identifier"),
    plan(Q.author("Ann")),
    plan(Q.author("Nobody")),
    plan(Q.reviewed()),
    plan(Q.provisional(), limit=7),
    plan(Q.text("tree") & Q.type(EntryType.PRECISE)),
    plan(Q.text("schema") | Q.author("Cleo"), limit=10),
    plan(~Q.text("tree"), sort="identifier", limit=5),
    plan(Q.text("tree") & ~Q.property("correct", holds=False)),
    plan((Q.text("graph") | Q.text("list")) & Q.provisional(), limit=6),
    plan(Q.text("reviewed polished"), limit=3),
    plan(Q.text("tree"), offset=2, limit=3),
    plan(Q.text("tree"), offset=50),  # past the end
    plan(None, sort="identifier", offset=10, limit=4),
    plan(Q.text("remark")),  # only visible via replace_latest
    plan(Q.all(), limit=0),
]


def assert_same_result(ours, expected, label):
    __tracebackhint__ = True
    assert ours.total == expected.total, label
    assert [hit.identifier for hit in ours.hits] == \
        [hit.identifier for hit in expected.hits], label
    assert [hit.score for hit in ours.hits] == pytest.approx(
        [hit.score for hit in expected.hits]), label
    assert [hit.entry for hit in ours.hits] == \
        [hit.entry for hit in expected.hits], label
    assert ours.facets == expected.facets, label


class TestPushdownConformance:
    def test_backend_matches_reference_on_every_plan(self, backend,
                                                     reference):
        for query_plan in PLANS:
            assert_same_result(backend.execute_query(query_plan),
                               reference.execute_query(query_plan),
                               f"plan: {query_plan}")

    def test_service_matches_reference_on_every_plan(self, backend,
                                                     reference):
        """Through the facade: pushdown and index paths answer alike."""
        service = RepositoryService(backend)
        for query_plan in PLANS:
            assert_same_result(service.execute_query(query_plan),
                               reference.execute_query(query_plan),
                               f"plan: {query_plan}")

    def test_sharded_pagination_is_globally_correct(self, tmp_path):
        """Pages assembled from per-shard partials equal one store's."""
        sharded = make_backend("sharded-sqlite", tmp_path)
        single = MemoryBackend()
        populate(sharded)
        populate(single)
        full = single.execute_query(plan("tree", limit=None))
        for offset in range(0, full.total + 2, 3):
            page = sharded.execute_query(plan("tree", offset=offset,
                                              limit=3))
            expect = [hit.identifier
                      for hit in full.hits[offset:offset + 3]]
            assert page.identifiers == expect
            assert page.total == full.total
        sharded.close()


class TestPushdownCapabilities:
    def test_native_query_flags(self, tmp_path):
        assert SQLiteBackend(tmp_path / "a.db").supports_native_query
        assert not MemoryBackend().supports_native_query
        assert not FileBackend(tmp_path / "f").supports_native_query
        assert ShardedBackend(
            [SQLiteBackend(), SQLiteBackend()]).supports_native_query
        assert not ShardedBackend(
            [SQLiteBackend(), MemoryBackend()]).supports_native_query
        assert ReplicatedBackend(
            SQLiteBackend(),
            FileBackend(tmp_path / "r")).supports_native_query

    def test_sqlite_pushdown_decodes_only_the_page(self, tmp_path,
                                                   monkeypatch):
        """The SQL path must not materialise non-hit payloads.

        A fresh backend over the populated database plays the part of a
        new process: its decode memo is empty (the writer process's
        memo primes on write, so in-process the page would decode zero
        times), which is what makes "exactly one decode per returned
        hit" the honest upper bound to pin here.
        """
        with SQLiteBackend(tmp_path / "repo.db") as writer:
            populate(writer)
            writer.execute_query(plan(None))  # settle the deferred index
        backend = SQLiteBackend(tmp_path / "repo.db")
        from repro.repository import entry as entry_module

        calls = []
        original = entry_module.ExampleEntry.from_dict
        monkeypatch.setattr(
            entry_module.ExampleEntry, "from_dict",
            staticmethod(lambda data: calls.append(1) or original(data)))
        result = backend.execute_query(plan("tree", limit=3))
        assert len(result.hits) == 3
        assert len(calls) == 3  # one decode per returned hit, no more
        backend.close()

    def test_replicated_query_routes_around_dead_primary(self, tmp_path):
        primary = SQLiteBackend(tmp_path / "primary.db")
        replica = SQLiteBackend(tmp_path / "replica.db")
        backend = ReplicatedBackend(primary, replica)
        populate(backend)
        expected = backend.execute_query(plan("tree"))
        primary.close()  # infrastructure failure, not a semantic answer
        survived = backend.execute_query(plan("tree"))
        assert_same_result(survived, expected, "failover query")
        replica.close()

    def test_sqlite_legacy_database_is_backfilled(self, tmp_path):
        """A pre-pushdown database gains the metadata tables on open."""
        path = tmp_path / "legacy.db"
        with SQLiteBackend(path) as backend:
            populate(backend)
            expected_ids = backend.execute_query(plan("tree")).identifiers
            # Simulate a database written before the query tables
            # existed: drop every derived row (schema stays).
            with backend._conn:
                for table in ("latest", "latest_types",
                              "latest_properties", "latest_authors",
                              "latest_terms"):
                    backend._conn.execute(f"DELETE FROM {table}")
        with SQLiteBackend(path) as reopened:
            assert reopened.execute_query(
                plan("tree")).identifiers == expected_ids
