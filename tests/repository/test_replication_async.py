"""Streaming (async) replication on ``ReplicatedBackend`` (PR 10).

The trailing-log/applier machinery: writes acknowledged by the primary
stream to replicas in the background, lag is observable and drainable,
a full log backpressures into inline sync draining (never a dropped
op), ``anti_entropy`` is the backstop after an applier death, and the
PR-9 repair-before-rejoin invariant holds unchanged in async mode.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.errors import StorageError
from repro.repository import (
    FaultInjector,
    FlakyBackend,
    MemoryBackend,
    ReplicatedBackend,
)
from tests.repository.test_entry import minimal_entry


def entry_batch(count: int, prefix: str = "STREAM"):
    return [minimal_entry(title=f"{prefix} {index}")
            for index in range(count)]


def make_pair(*, mode: str = "async", max_lag: int = 512,
              replicas: int = 1):
    primary = MemoryBackend()
    copies = [MemoryBackend() for _ in range(replicas)]
    pair = ReplicatedBackend(primary, copies, mode=mode, max_lag=max_lag)
    return pair, copies


class TestStreamingReplication:
    def test_writes_stream_to_the_replica_in_background(self):
        pair, (replica,) = make_pair()
        try:
            entries = entry_batch(8)
            for entry in entries:
                pair.add(entry)
            assert pair.wait_for_replication(timeout=5.0)
            assert pair.replication_lag() == [0]
            assert pair.async_applied == len(entries)
            for entry in entries:
                assert replica.get(entry.identifier) == entry
        finally:
            pair.close()

    def test_sync_mode_keeps_empty_logs(self):
        pair, (replica,) = make_pair(mode="sync")
        try:
            for entry in entry_batch(4):
                pair.add(entry)
            assert pair.replication_lag() == [0]
            assert pair.async_applied == 0
            assert replica.entry_count() == 4
        finally:
            pair.close()

    def test_killed_applier_accumulates_lag_and_restart_drains_it(self):
        pair, (replica,) = make_pair()
        try:
            assert pair.kill_applier(0)
            entries = entry_batch(5)
            for entry in entries:
                pair.add(entry)
            # Acknowledged on the primary, trailing on the replica.
            assert pair.replication_lag() == [len(entries)]
            assert pair.entry_count() == len(entries)
            assert pair.start_appliers() == [0]
            assert pair.wait_for_replication(timeout=5.0)
            assert pair.replication_lag() == [0]
            for entry in entries:
                assert replica.get(entry.identifier) == entry
        finally:
            pair.close()

    def test_backpressure_degrades_to_inline_sync_never_drops(self):
        pair, (replica,) = make_pair(max_lag=3)
        try:
            assert pair.kill_applier(0)
            entries = entry_batch(7)
            for entry in entries:
                pair.add(entry)
            # Every op beyond the watermark enqueued *and* forced the
            # writer to drain inline — order preserved, nothing lost.
            assert pair.backpressure_syncs >= 1
            assert pair.replication_lag()[0] <= 3
            assert pair.start_appliers() == [0]
            assert pair.wait_for_replication(timeout=5.0)
            for entry in entries:
                assert replica.get(entry.identifier) == entry
        finally:
            pair.close()

    def test_anti_entropy_is_the_backstop_after_applier_death(self):
        pair, (replica,) = make_pair()
        try:
            assert pair.kill_applier(0)
            entries = entry_batch(6)
            for entry in entries:
                pair.add(entry)
            assert pair.replication_lag() == [len(entries)]
            report = pair.anti_entropy()
            # The repair supersedes the trailing log: cleared, not
            # replayed (replaying would only raise duplicates).
            assert pair.replication_lag() == [0]
            assert report.entries_copied == len(entries)
            assert not report.conflicts
            for entry in entries:
                assert replica.get(entry.identifier) == entry
        finally:
            pair.close()

    def test_lagging_replica_never_serves_stale_reads(self):
        """Primary-first reads: while the primary is healthy a trailing
        replica is never consulted, so lag cannot leak stale state."""
        pair, (replica,) = make_pair()
        try:
            assert pair.kill_applier(0)
            entry = minimal_entry(title="FRESH")
            pair.add(entry)
            assert pair.replication_lag() == [1]
            assert replica.entry_count() == 0  # genuinely trailing
            assert pair.get(entry.identifier) == entry
            assert pair.has(entry.identifier)
            assert entry.identifier in pair.identifiers()
        finally:
            pair.close()


class TestModeSwitching:
    def test_switch_to_sync_drains_then_stops_appliers(self):
        pair, (replica,) = make_pair()
        try:
            assert pair.kill_applier(0)
            entries = entry_batch(4)
            for entry in entries:
                pair.add(entry)
            assert pair.replication_lag() == [len(entries)]
            pair.set_replication_mode("sync")
            assert pair.mode == "sync"
            # The switch itself drained the trailing log inline.
            assert pair.replication_lag() == [0]
            for entry in entries:
                assert replica.get(entry.identifier) == entry
            stats = pair.resilience_stats()["replication"]
            assert stats["appliers_alive"] == [False]
        finally:
            pair.close()

    def test_switch_to_async_starts_appliers(self):
        pair, (replica,) = make_pair(mode="sync")
        try:
            pair.set_replication_mode("async")
            assert pair.mode == "async"
            stats = pair.resilience_stats()["replication"]
            assert stats["appliers_alive"] == [True]
            entry = minimal_entry(title="AFTER SWITCH")
            pair.add(entry)
            assert pair.wait_for_replication(timeout=5.0)
            assert replica.get(entry.identifier) == entry
        finally:
            pair.close()

    def test_switching_to_the_current_mode_is_a_no_op(self):
        pair, _ = make_pair(mode="sync")
        try:
            pair.set_replication_mode("sync")
            assert pair.mode == "sync"
            assert pair.resilience_stats()["replication"][
                "appliers_alive"] == [False]
        finally:
            pair.close()

    def test_validation_raises_storage_errors(self):
        primary, replica = MemoryBackend(), MemoryBackend()
        with pytest.raises(StorageError):
            ReplicatedBackend(primary, [replica], mode="semi")
        with pytest.raises(StorageError):
            ReplicatedBackend(primary, [replica], max_lag=0)
        pair, _ = make_pair(mode="sync")
        try:
            with pytest.raises(StorageError):
                pair.set_replication_mode("eventual")
        finally:
            pair.close()


class TestReplicationIntrospection:
    def test_resilience_stats_carries_the_replication_block(self):
        pair, _ = make_pair(replicas=2)
        try:
            for entry in entry_batch(3):
                pair.add(entry)
            assert pair.wait_for_replication(timeout=5.0)
            stats = pair.resilience_stats()["replication"]
            assert stats["mode"] == "async"
            assert stats["lag"] == [0, 0]
            assert stats["max_lag"] == 512
            assert stats["backpressure_syncs"] == 0
            assert stats["async_applied"] == 6  # 3 writes x 2 replicas
            assert stats["appliers_alive"] == [True, True]
        finally:
            pair.close()

    def test_wait_for_replication_times_out_honestly(self):
        pair, _ = make_pair()
        try:
            assert pair.kill_applier(0)
            pair.add(minimal_entry(title="STUCK"))
            assert pair.wait_for_replication(timeout=0.1) is False
            assert pair.replication_lag() == [1]
        finally:
            pair.close()

    def test_close_drains_outstanding_log_ops(self):
        pair, (replica,) = make_pair()
        assert pair.kill_applier(0)
        entries = entry_batch(3)
        for entry in entries:
            pair.add(entry)
        assert pair.replication_lag() == [len(entries)]
        pair.close()
        for entry in entries:
            assert replica.has(entry.identifier)


class TestAsyncRepairBeforeRejoin:
    def test_suspended_replica_is_repaired_before_rejoining(self):
        """The PR-9 invariant survives async mode: a replica whose
        breaker opened misses writes entirely (nothing is even queued
        for it); reintegration repairs it from a primary snapshot
        before it re-enters rotation."""
        injector = FaultInjector()
        primary = MemoryBackend()
        raw_replica = MemoryBackend()
        flaky = FlakyBackend(raw_replica, injector, "replica")
        pair = ReplicatedBackend(primary, [flaky],
                                 failure_threshold=3,
                                 reset_timeout=60.0,
                                 mode="async")
        try:
            flaky.kill()
            entries = entry_batch(6)
            for entry in entries:
                pair.add(entry)
            assert pair.wait_for_replication(timeout=5.0)
            assert pair.suspended_replicas() == (0,)
            # An open breaker means new writes skip the log entirely.
            lag_while_dead = pair.replication_lag()[0]
            pair.add(minimal_entry(title="SKIPPED"))
            assert pair.replication_lag()[0] == lag_while_dead
            assert raw_replica.entry_count() == 0
            flaky.revive()
            assert pair.check_health() == [0]
            assert pair.suspended_replicas() == ()
            # Repair-before-rejoin: back in rotation fully caught up.
            assert raw_replica.entry_count() == pair.primary.entry_count()
        finally:
            pair.close()

    def test_concurrent_writers_all_replicate(self):
        pair, (replica,) = make_pair()
        try:
            batches = [entry_batch(10, prefix=f"W{index}")
                       for index in range(4)]

            def writer(batch):
                for entry in batch:
                    pair.add(entry)

            threads = [threading.Thread(target=writer, args=(batch,))
                       for batch in batches]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert pair.wait_for_replication(timeout=5.0)
            assert replica.entry_count() == 40
            assert pair.async_applied == 40
        finally:
            pair.close()
