"""The HTTP serving layer: routing, wire fidelity, the wiki cache.

The conformance suites (test_backends.py, test_query_conformance.py)
already hold HTTPBackend-through-RepositoryServer to the storage and
query contracts; this file covers what only the HTTP layer itself can
get wrong — routes, status codes, malformed input, the render-cache
endpoint, concurrent handler threads, and lifecycle.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.errors import EntryNotFound, StorageError
from repro.repository.aservice import AsyncRepositoryService
from repro.repository.backends import MemoryBackend
from repro.repository.client import HTTPBackend
from repro.repository.server import RepositoryServer
from repro.repository.service import RepositoryService
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry


@pytest.fixture()
def served():
    service = RepositoryService(MemoryBackend())
    server = RepositoryServer(service).start()
    client = HTTPBackend(server.url)
    yield server, client
    client.close()
    server.stop()
    service.close()


def entry_batch(count: int):
    return [minimal_entry(title=f"ENTRY {index}") for index in range(count)]


def fetch(url: str):
    """Raw GET: (status, content_type, body bytes) — errors included."""
    try:
        with urllib.request.urlopen(url) as response:
            return (response.status, response.headers.get_content_type(),
                    response.read())
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get_content_type(), error.read()


class TestRouting:
    def test_unknown_route_is_a_json_404(self, served):
        server, _client = served
        status, content_type, body = fetch(server.url + "/nope")
        assert status == 404
        assert content_type == "application/json"
        assert json.loads(body)["error"]["type"] == "StorageError"

    def test_unknown_version_string_is_a_400(self, served):
        server, client = served
        client.add(minimal_entry())
        status, _type, body = fetch(
            server.url + "/entries/demo-example?version=banana")
        assert status == 400
        assert json.loads(body)["error"]["type"] == "VersioningError"

    def test_missing_entry_is_a_structured_404(self, served):
        server, _client = served
        status, _type, body = fetch(server.url + "/entries/ghost")
        detail = json.loads(body)["error"]
        assert status == 404
        assert detail["type"] == "EntryNotFound"
        assert detail["identifier"] == "ghost"

    def test_duplicate_add_is_a_409(self, served):
        server, client = served
        client.add(minimal_entry())
        request = urllib.request.Request(
            server.url + "/entries",
            data=json.dumps({"entry": minimal_entry().to_dict()}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 409

    def test_malformed_json_body_is_a_400(self, served):
        server, _client = served
        request = urllib.request.Request(
            server.url + "/query", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 400
        assert "malformed JSON" in json.loads(
            caught.value.read())["error"]["message"]

    def test_body_identifier_must_match_the_path(self, served):
        _server, client = served
        client.add(minimal_entry())
        impostor = minimal_entry(title="IMPOSTOR")
        with pytest.raises(StorageError, match="does not match"):
            client._request("PUT", "/entries/demo-example",
                            {"entry": impostor.to_dict()})

    def test_unknown_route_with_body_keeps_the_connection_usable(
            self, served):
        """The body of a rejected request is drained before replying:
        a keep-alive connection must not desync (leftover body bytes
        parsed as the next request line)."""
        _server, client = served
        client.add(minimal_entry())
        with pytest.raises(StorageError, match="no route"):
            client._request("POST", "/nonexistent",
                            {"entry": minimal_entry().to_dict()})
        # Same thread, same keep-alive connection: still in sync.
        assert client.identifiers() == ["demo-example"]
        assert client.has("demo-example")

    def test_percent_encoded_identifier_is_one_segment(self, served):
        """An identifier containing '/' travels as %2F and must not be
        split into path segments (mis-routing 'x/versions' to the
        versions handler, or 404ing has())."""
        _server, client = served
        client.add(minimal_entry())
        assert client.has("a/b") is False  # routed, answered, not 404
        with pytest.raises(EntryNotFound) as caught:
            client.get("a/b")
        assert caught.value.identifier == "a/b"
        with pytest.raises(EntryNotFound) as caught:
            client.get("demo-example/versions")
        assert caught.value.identifier == "demo-example/versions"

    def test_write_retries_when_the_stale_connection_fails_to_send(
            self, served):
        """A keep-alive connection the server dropped while idle fails
        at *send* time — the request never left, so one retry on a
        fresh connection is safe for writes too (without it, the first
        write after every idle gap dies with 'unreachable')."""
        _server, client = served
        client.add(minimal_entry())
        client._local.connection.sock.close()  # simulate the idle drop
        client.add_version(minimal_entry(version=Version(0, 2)))
        assert client.versions("demo-example") == \
            [Version(0, 1), Version(0, 2)]

    def test_oversized_body_rejected_by_header_alone(self, served):
        """A huge Content-Length is refused before any body bytes are
        read into memory; the connection closes instead of draining."""
        server, _client = served
        import http.client as hc
        connection = hc.HTTPConnection("127.0.0.1", server.port,
                                       timeout=10)
        connection.putrequest("POST", "/entries")
        connection.putheader("Content-Type", "application/json")
        connection.putheader("Content-Length", str(1 << 31))
        connection.endheaders()
        response = connection.getresponse()
        detail = json.loads(response.read())["error"]
        assert response.status == 400
        assert "exceeds" in detail["message"]
        connection.close()

    def test_counter_endpoint_is_the_hot_path_subset(self, served):
        server, client = served
        client.add_many(entry_batch(3))
        payload = json.loads(fetch(server.url + "/counter")[2])
        assert payload == {"entry_count": 3, "change_counter": None}
        assert client.entry_count() == 3
        assert client.change_counter() is None

    def test_get_with_explicit_version(self, served):
        _server, client = served
        client.add(minimal_entry())
        client.add_version(minimal_entry(version=Version(0, 2),
                                         overview="Better."))
        assert client.get("demo-example").overview == "Better."
        old = client.get("demo-example", Version(0, 1))
        assert old.overview == "A demo."


class TestStatsEndpoint:
    def test_stats_shape(self, served):
        server, client = served
        client.add_many(entry_batch(3))
        client.get("entry-0")
        payload = json.loads(fetch(server.url + "/stats")[2])
        assert payload["entry_count"] == 3
        assert payload["change_counter"] is None  # memory backend
        assert "entry_cache" in payload["cache"]
        assert set(payload["render_cache"]) >= {"hits", "misses"}

    def test_client_namespaces_server_caches(self, served):
        _server, client = served
        client.add(minimal_entry())
        stats = client.cache_stats()
        assert all(name.startswith("server:") for name in stats)
        assert "server:entry_cache" in stats


class TestWikiEndpoint:
    def test_page_is_rendered_wikidot(self, served):
        server, client = served
        client.add(minimal_entry())
        status, content_type, body = fetch(
            server.url + "/wiki/demo-example")
        assert status == 200
        assert content_type == "text/plain"
        assert body.decode("utf-8").startswith("+ DEMO EXAMPLE")

    def test_pages_come_from_the_render_cache(self, served):
        server, client = served
        client.add_many(entry_batch(2))
        for _round in range(3):
            fetch(server.url + "/wiki/entry-0")
        stats = server.render_cache.cache_stats()
        assert stats["misses"] == 1  # rendered once...
        assert stats["hits"] == 2  # ...then served warm

    def test_write_evicts_exactly_the_written_page(self, served):
        server, client = served
        client.add_many(entry_batch(2))
        fetch(server.url + "/wiki/entry-0")
        fetch(server.url + "/wiki/entry-1")
        client.replace_latest(minimal_entry(title="ENTRY 0",
                                            overview="Patched."))
        assert "Patched." in fetch(server.url + "/wiki/entry-0")[2].decode()
        stats = server.render_cache.cache_stats()
        assert stats["invalidations"] == 1
        assert stats["misses"] == 3  # entry-0 re-rendered, entry-1 not

    def test_missing_page_is_a_404(self, served):
        server, _client = served
        status, _type, body = fetch(server.url + "/wiki/ghost")
        assert status == 404
        assert json.loads(body)["error"]["type"] == "EntryNotFound"


class TestConcurrency:
    def test_many_client_threads_read_consistently(self, served):
        """16 threads hammer reads through keep-alive connections while
        the service stays coherent (each thread gets its own
        HTTPConnection via the backend's thread-local)."""
        _server, client = served
        batch = entry_batch(10)
        client.add_many(batch)
        errors: list[Exception] = []

        def reader(seed: int) -> None:
            try:
                for index in range(20):
                    identifier = f"entry-{(seed + index) % 10}"
                    assert client.get(identifier).identifier == identifier
                assert client.entry_count() == 10
            except Exception as error:  # pragma: no cover - fail below
                errors.append(error)

        threads = [threading.Thread(target=reader, args=(seed,))
                   for seed in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []

    def test_readers_interleave_with_writers(self, served):
        _server, client = served
        client.add_many(entry_batch(4))
        stop = threading.Event()
        errors: list[Exception] = []

        def writer() -> None:
            try:
                for minor in range(2, 12):
                    client.add_version(
                        minimal_entry(title="ENTRY 0",
                                      version=Version(0, minor)))
            except Exception as error:  # pragma: no cover - fail below
                errors.append(error)
            finally:
                stop.set()

        def reader() -> None:
            try:
                while not stop.is_set():
                    entry = client.get("entry-0")
                    assert entry.identifier == "entry-0"
            except Exception as error:  # pragma: no cover - fail below
                errors.append(error)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert client.versions("entry-0")[-1] == Version(0, 11)


class TestLifecycle:
    def test_context_manager_serves_and_stops(self):
        service = RepositoryService(MemoryBackend())
        with RepositoryServer(service) as server:
            url = server.url
            client = HTTPBackend(url)
            client.add(minimal_entry())
            assert client.has("demo-example")
            client.close()
        # Stopped: a fresh connection is refused.
        fresh = HTTPBackend(url)
        with pytest.raises(StorageError, match="unreachable"):
            fresh.identifiers()
        fresh.close()
        service.close()

    def test_routed_get_with_unread_body_keeps_connection_usable(
            self, served):
        """A body sent with a routed GET is drained after the reply,
        so keep-alive framing stays intact on the success path too."""
        server, client = served
        client.add(minimal_entry())
        import http.client as hc
        connection = hc.HTTPConnection("127.0.0.1", server.port,
                                       timeout=10)
        payload = json.dumps({"unexpected": "body"})
        connection.request("GET", "/entries", body=payload,
                           headers={"Content-Type": "application/json"})
        first = connection.getresponse()
        assert first.status == 200
        assert json.loads(first.read())["identifiers"] == ["demo-example"]
        # Same connection: the next request must parse cleanly.
        connection.request("GET", "/entries/demo-example/has")
        second = connection.getresponse()
        assert second.status == 200
        assert json.loads(second.read())["has"] is True
        connection.close()

    def test_stop_drains_in_flight_requests(self):
        """stop() waits for requests already inside a handler, so they
        finish against a live service instead of a closed one."""
        import time

        class SlowBackend(MemoryBackend):
            def get(self, identifier, version=None):
                time.sleep(0.4)
                return super().get(identifier, version)

        service = RepositoryService(SlowBackend(), cache_size=0)
        server = RepositoryServer(service, close_service=True).start()
        url = server.url
        client = HTTPBackend(url)
        client.add(minimal_entry())
        outcome: list[object] = []

        def slow_read() -> None:
            try:
                outcome.append(client.get("demo-example"))
            except Exception as error:  # pragma: no cover - fail below
                outcome.append(error)

        reader = threading.Thread(target=slow_read)
        reader.start()
        time.sleep(0.15)  # the request is inside the handler now
        server.stop()  # closes the service — must drain first
        reader.join(timeout=10)
        client.close()
        assert len(outcome) == 1
        assert getattr(outcome[0], "identifier", None) == "demo-example", \
            outcome

    def test_idle_connection_refreshed_before_reuse(self, served):
        """A kept-alive connection idle past the reuse limit is
        replaced up front — the idle-close race would otherwise
        surface at response time, where writes cannot retry."""
        import time

        _server, client = served
        client.add(minimal_entry())
        client.idle_reuse_limit = 0.05
        stale = client._local.connection
        time.sleep(0.12)
        client.add_version(minimal_entry(version=Version(0, 2)))  # a write
        assert client._local.connection is not stale
        assert client.versions("demo-example") == \
            [Version(0, 1), Version(0, 2)]

    def test_chunked_request_body_rejected_and_connection_closed(
            self, served):
        """No Content-Length means no way to drain: the request is
        refused and the connection closes instead of parsing the
        chunk stream as the next request."""
        server, _client = served
        import http.client as hc
        connection = hc.HTTPConnection("127.0.0.1", server.port,
                                       timeout=10)
        connection.putrequest("POST", "/entries")
        connection.putheader("Content-Type", "application/json")
        connection.putheader("Transfer-Encoding", "chunked")
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 400
        assert "chunked" in json.loads(response.read())["error"]["message"]
        with pytest.raises((hc.HTTPException, OSError)):
            connection.request("GET", "/entries")
            connection.getresponse()
        connection.close()

    def test_unstarted_server_leaves_no_subscriber_behind(self):
        service = RepositoryService(MemoryBackend())
        baseline = len(service._subscribers)
        server = RepositoryServer(service)
        assert server.render_cache is None
        assert len(service._subscribers) == baseline
        server.stop()  # never started: a safe no-op
        server.start()
        assert len(service._subscribers) == baseline + 1
        server.stop()
        assert len(service._subscribers) == baseline
        service.close()

    def test_base_url_path_prefix_is_honoured(self):
        client = HTTPBackend("http://127.0.0.1:1/repo/")
        assert client._prefix == "/repo"
        plain = HTTPBackend("http://127.0.0.1:1")
        assert plain._prefix == ""
        client.close()
        plain.close()

    def test_restart_resubscribes_the_render_cache(self):
        """stop() detaches the render cache; a restarted server must
        build a fresh, subscribed one — not serve stale pages that no
        longer evict on writes."""
        service = RepositoryService(MemoryBackend())
        server = RepositoryServer(service).start()
        client = HTTPBackend(server.url)
        client.add(minimal_entry())
        assert "A demo." in fetch(server.url + "/wiki/demo-example")[2] \
            .decode()
        client.close()
        server.stop()

        server.start()
        fresh = HTTPBackend(server.url)
        fresh.replace_latest(minimal_entry(overview="Patched."))
        page = fetch(server.url + "/wiki/demo-example")[2].decode()
        assert "Patched." in page  # the new cache heard the write
        fresh.close()
        server.stop()
        service.close()

    def test_port_property_requires_running_server(self):
        server = RepositoryServer(RepositoryService(MemoryBackend()))
        with pytest.raises(StorageError, match="not running"):
            _ = server.port

    def test_bare_backend_is_wrapped_in_a_service(self):
        server = RepositoryServer(MemoryBackend())
        assert isinstance(server.service, RepositoryService)

    def test_async_facade_is_unwrapped_to_its_sync_service(self):
        service = RepositoryService(MemoryBackend())
        aservice = AsyncRepositoryService(service)
        server = RepositoryServer(aservice)
        assert server.service is service

    def test_closed_client_refuses_requests(self, served):
        _server, client = served
        client.add(minimal_entry())
        client.close()
        with pytest.raises(StorageError, match="closed"):
            client.identifiers()

    def test_client_rejects_non_http_urls(self):
        with pytest.raises(StorageError, match="http://"):
            HTTPBackend("ftp://example.org")
