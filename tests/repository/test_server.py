"""The HTTP serving layer: routing, wire fidelity, the wiki cache.

The conformance suites (test_backends.py, test_query_conformance.py)
already hold HTTPBackend-through-RepositoryServer to the storage and
query contracts; this file covers what only the HTTP layer itself can
get wrong — routes, status codes, malformed input, the render-cache
endpoint, concurrent handler threads, and lifecycle.
"""

from __future__ import annotations

import gzip
import http.client
import json
import socket
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.errors import EntryNotFound, StorageError
from repro.repository.aservice import AsyncRepositoryService
from repro.repository.backends import MemoryBackend
from repro.repository.client import HTTPBackend
from repro.repository.codec import encode_entry
from repro.repository.server import STREAM_PAGE_SIZE, RepositoryServer
from repro.repository.service import RepositoryService
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry


@pytest.fixture()
def served():
    service = RepositoryService(MemoryBackend())
    server = RepositoryServer(service).start()
    client = HTTPBackend(server.url)
    yield server, client
    client.close()
    server.stop()
    service.close()


def entry_batch(count: int):
    return [minimal_entry(title=f"ENTRY {index}") for index in range(count)]


def fetch(url: str):
    """Raw GET: (status, content_type, body bytes) — errors included."""
    try:
        with urllib.request.urlopen(url) as response:
            return (response.status, response.headers.get_content_type(),
                    response.read())
    except urllib.error.HTTPError as error:
        return error.code, error.headers.get_content_type(), error.read()


class TestRouting:
    def test_unknown_route_is_a_json_404(self, served):
        server, _client = served
        status, content_type, body = fetch(server.url + "/nope")
        assert status == 404
        assert content_type == "application/json"
        assert json.loads(body)["error"]["type"] == "StorageError"

    def test_unknown_version_string_is_a_400(self, served):
        server, client = served
        client.add(minimal_entry())
        status, _type, body = fetch(
            server.url + "/entries/demo-example?version=banana")
        assert status == 400
        assert json.loads(body)["error"]["type"] == "VersioningError"

    def test_missing_entry_is_a_structured_404(self, served):
        server, _client = served
        status, _type, body = fetch(server.url + "/entries/ghost")
        detail = json.loads(body)["error"]
        assert status == 404
        assert detail["type"] == "EntryNotFound"
        assert detail["identifier"] == "ghost"

    def test_duplicate_add_is_a_409(self, served):
        server, client = served
        client.add(minimal_entry())
        request = urllib.request.Request(
            server.url + "/entries",
            data=json.dumps({"entry": minimal_entry().to_dict()}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 409

    def test_malformed_json_body_is_a_400(self, served):
        server, _client = served
        request = urllib.request.Request(
            server.url + "/query", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST")
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 400
        assert "malformed JSON" in json.loads(
            caught.value.read())["error"]["message"]

    def test_body_identifier_must_match_the_path(self, served):
        _server, client = served
        client.add(minimal_entry())
        impostor = minimal_entry(title="IMPOSTOR")
        with pytest.raises(StorageError, match="does not match"):
            client._request("PUT", "/entries/demo-example",
                            {"entry": impostor.to_dict()})

    def test_unknown_route_with_body_keeps_the_connection_usable(
            self, served):
        """The body of a rejected request is drained before replying:
        a keep-alive connection must not desync (leftover body bytes
        parsed as the next request line)."""
        _server, client = served
        client.add(minimal_entry())
        with pytest.raises(StorageError, match="no route"):
            client._request("POST", "/nonexistent",
                            {"entry": minimal_entry().to_dict()})
        # Same thread, same keep-alive connection: still in sync.
        assert client.identifiers() == ["demo-example"]
        assert client.has("demo-example")

    def test_percent_encoded_identifier_is_one_segment(self, served):
        """An identifier containing '/' travels as %2F and must not be
        split into path segments (mis-routing 'x/versions' to the
        versions handler, or 404ing has())."""
        _server, client = served
        client.add(minimal_entry())
        assert client.has("a/b") is False  # routed, answered, not 404
        with pytest.raises(EntryNotFound) as caught:
            client.get("a/b")
        assert caught.value.identifier == "a/b"
        with pytest.raises(EntryNotFound) as caught:
            client.get("demo-example/versions")
        assert caught.value.identifier == "demo-example/versions"

    def test_write_retries_when_the_stale_connection_fails_to_send(
            self, served):
        """A keep-alive connection the server dropped while idle fails
        at *send* time — the request never left, so one retry on a
        fresh connection is safe for writes too (without it, the first
        write after every idle gap dies with 'unreachable')."""
        _server, client = served
        client.add(minimal_entry())
        client._local.connection.sock.close()  # simulate the idle drop
        client.add_version(minimal_entry(version=Version(0, 2)))
        assert client.versions("demo-example") == \
            [Version(0, 1), Version(0, 2)]

    def test_oversized_body_rejected_by_header_alone(self, served):
        """A huge Content-Length is refused before any body bytes are
        read into memory; the connection closes instead of draining."""
        server, _client = served
        import http.client as hc
        connection = hc.HTTPConnection("127.0.0.1", server.port,
                                       timeout=10)
        connection.putrequest("POST", "/entries")
        connection.putheader("Content-Type", "application/json")
        connection.putheader("Content-Length", str(1 << 31))
        connection.endheaders()
        response = connection.getresponse()
        detail = json.loads(response.read())["error"]
        assert response.status == 400
        assert "exceeds" in detail["message"]
        connection.close()

    def test_counter_endpoint_is_the_hot_path_subset(self, served):
        server, client = served
        client.add_many(entry_batch(3))
        payload = json.loads(fetch(server.url + "/counter")[2])
        assert set(payload) == {"entry_count", "change_counter",
                                "change_token"}
        assert payload["entry_count"] == 3
        assert payload["change_counter"] is None  # memory backend
        # ...but the service overlays its epoch+sequence token, so the
        # wire always has a validator.
        assert isinstance(payload["change_token"], str)
        assert client.entry_count() == 3
        assert client.change_counter() is None
        assert client.change_token() == payload["change_token"]

    def test_get_with_explicit_version(self, served):
        _server, client = served
        client.add(minimal_entry())
        client.add_version(minimal_entry(version=Version(0, 2),
                                         overview="Better."))
        assert client.get("demo-example").overview == "Better."
        old = client.get("demo-example", Version(0, 1))
        assert old.overview == "A demo."


class TestStatsEndpoint:
    def test_stats_shape(self, served):
        server, client = served
        client.add_many(entry_batch(3))
        client.get("entry-0")
        payload = json.loads(fetch(server.url + "/stats")[2])
        assert payload["entry_count"] == 3
        assert payload["change_counter"] is None  # memory backend
        assert "entry_cache" in payload["cache"]
        assert set(payload["render_cache"]) >= {"hits", "misses"}

    def test_client_namespaces_server_caches(self, served):
        _server, client = served
        client.add(minimal_entry())
        stats = client.cache_stats()
        assert all(name.startswith("server:") for name in stats)
        assert "server:entry_cache" in stats


class TestWikiEndpoint:
    def test_page_is_rendered_wikidot(self, served):
        server, client = served
        client.add(minimal_entry())
        status, content_type, body = fetch(
            server.url + "/wiki/demo-example")
        assert status == 200
        assert content_type == "text/plain"
        assert body.decode("utf-8").startswith("+ DEMO EXAMPLE")

    def test_pages_come_from_the_render_cache(self, served):
        server, client = served
        client.add_many(entry_batch(2))
        for _round in range(3):
            fetch(server.url + "/wiki/entry-0")
        stats = server.render_cache.cache_stats()
        assert stats["misses"] == 1  # rendered once...
        assert stats["hits"] == 2  # ...then served warm

    def test_write_evicts_exactly_the_written_page(self, served):
        server, client = served
        client.add_many(entry_batch(2))
        fetch(server.url + "/wiki/entry-0")
        fetch(server.url + "/wiki/entry-1")
        client.replace_latest(minimal_entry(title="ENTRY 0",
                                            overview="Patched."))
        assert "Patched." in fetch(server.url + "/wiki/entry-0")[2].decode()
        stats = server.render_cache.cache_stats()
        assert stats["invalidations"] == 1
        assert stats["misses"] == 3  # entry-0 re-rendered, entry-1 not

    def test_missing_page_is_a_404(self, served):
        server, _client = served
        status, _type, body = fetch(server.url + "/wiki/ghost")
        assert status == 404
        assert json.loads(body)["error"]["type"] == "EntryNotFound"


class TestConcurrency:
    def test_many_client_threads_read_consistently(self, served):
        """16 threads hammer reads through keep-alive connections while
        the service stays coherent (each thread gets its own
        HTTPConnection via the backend's thread-local)."""
        _server, client = served
        batch = entry_batch(10)
        client.add_many(batch)
        errors: list[Exception] = []

        def reader(seed: int) -> None:
            try:
                for index in range(20):
                    identifier = f"entry-{(seed + index) % 10}"
                    assert client.get(identifier).identifier == identifier
                assert client.entry_count() == 10
            except Exception as error:  # pragma: no cover - fail below
                errors.append(error)

        threads = [threading.Thread(target=reader, args=(seed,))
                   for seed in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []

    def test_readers_interleave_with_writers(self, served):
        _server, client = served
        client.add_many(entry_batch(4))
        stop = threading.Event()
        errors: list[Exception] = []

        def writer() -> None:
            try:
                for minor in range(2, 12):
                    client.add_version(
                        minimal_entry(title="ENTRY 0",
                                      version=Version(0, minor)))
            except Exception as error:  # pragma: no cover - fail below
                errors.append(error)
            finally:
                stop.set()

        def reader() -> None:
            try:
                while not stop.is_set():
                    entry = client.get("entry-0")
                    assert entry.identifier == "entry-0"
            except Exception as error:  # pragma: no cover - fail below
                errors.append(error)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        assert client.versions("entry-0")[-1] == Version(0, 11)


class TestLifecycle:
    def test_context_manager_serves_and_stops(self):
        service = RepositoryService(MemoryBackend())
        with RepositoryServer(service) as server:
            url = server.url
            client = HTTPBackend(url)
            client.add(minimal_entry())
            assert client.has("demo-example")
            client.close()
        # Stopped: a fresh connection is refused.
        fresh = HTTPBackend(url)
        with pytest.raises(StorageError, match="unreachable"):
            fresh.identifiers()
        fresh.close()
        service.close()

    def test_routed_get_with_unread_body_keeps_connection_usable(
            self, served):
        """A body sent with a routed GET is drained after the reply,
        so keep-alive framing stays intact on the success path too."""
        server, client = served
        client.add(minimal_entry())
        import http.client as hc
        connection = hc.HTTPConnection("127.0.0.1", server.port,
                                       timeout=10)
        payload = json.dumps({"unexpected": "body"})
        connection.request("GET", "/entries", body=payload,
                           headers={"Content-Type": "application/json"})
        first = connection.getresponse()
        assert first.status == 200
        assert json.loads(first.read())["identifiers"] == ["demo-example"]
        # Same connection: the next request must parse cleanly.
        connection.request("GET", "/entries/demo-example/has")
        second = connection.getresponse()
        assert second.status == 200
        assert json.loads(second.read())["has"] is True
        connection.close()

    def test_stop_drains_in_flight_requests(self):
        """stop() waits for requests already inside a handler, so they
        finish against a live service instead of a closed one."""
        import time

        class SlowBackend(MemoryBackend):
            def get(self, identifier, version=None):
                time.sleep(0.4)
                return super().get(identifier, version)

        service = RepositoryService(SlowBackend(), cache_size=0)
        server = RepositoryServer(service, close_service=True).start()
        url = server.url
        client = HTTPBackend(url)
        client.add(minimal_entry())
        outcome: list[object] = []

        def slow_read() -> None:
            try:
                outcome.append(client.get("demo-example"))
            except Exception as error:  # pragma: no cover - fail below
                outcome.append(error)

        reader = threading.Thread(target=slow_read)
        reader.start()
        time.sleep(0.15)  # the request is inside the handler now
        server.stop()  # closes the service — must drain first
        reader.join(timeout=10)
        client.close()
        assert len(outcome) == 1
        assert getattr(outcome[0], "identifier", None) == "demo-example", \
            outcome

    def test_idle_connection_refreshed_before_reuse(self, served):
        """A kept-alive connection idle past the reuse limit is
        replaced up front — the idle-close race would otherwise
        surface at response time, where writes cannot retry."""
        import time

        _server, client = served
        client.add(minimal_entry())
        client.idle_reuse_limit = 0.05
        stale = client._local.connection
        time.sleep(0.12)
        client.add_version(minimal_entry(version=Version(0, 2)))  # a write
        assert client._local.connection is not stale
        assert client.versions("demo-example") == \
            [Version(0, 1), Version(0, 2)]

    def test_chunked_request_body_rejected_and_connection_closed(
            self, served):
        """No Content-Length means no way to drain: the request is
        refused and the connection closes instead of parsing the
        chunk stream as the next request."""
        server, _client = served
        import http.client as hc
        connection = hc.HTTPConnection("127.0.0.1", server.port,
                                       timeout=10)
        connection.putrequest("POST", "/entries")
        connection.putheader("Content-Type", "application/json")
        connection.putheader("Transfer-Encoding", "chunked")
        connection.endheaders()
        response = connection.getresponse()
        assert response.status == 400
        assert "chunked" in json.loads(response.read())["error"]["message"]
        with pytest.raises((hc.HTTPException, OSError)):
            connection.request("GET", "/entries")
            connection.getresponse()
        connection.close()

    def test_unstarted_server_leaves_no_subscriber_behind(self):
        service = RepositoryService(MemoryBackend())
        baseline = len(service._subscribers)
        server = RepositoryServer(service)
        assert server.render_cache is None
        assert len(service._subscribers) == baseline
        server.stop()  # never started: a safe no-op
        server.start()
        assert len(service._subscribers) == baseline + 1
        server.stop()
        assert len(service._subscribers) == baseline
        service.close()

    def test_base_url_path_prefix_is_honoured(self):
        client = HTTPBackend("http://127.0.0.1:1/repo/")
        assert client._prefix == "/repo"
        plain = HTTPBackend("http://127.0.0.1:1")
        assert plain._prefix == ""
        client.close()
        plain.close()

    def test_restart_resubscribes_the_render_cache(self):
        """stop() detaches the render cache; a restarted server must
        build a fresh, subscribed one — not serve stale pages that no
        longer evict on writes."""
        service = RepositoryService(MemoryBackend())
        server = RepositoryServer(service).start()
        client = HTTPBackend(server.url)
        client.add(minimal_entry())
        assert "A demo." in fetch(server.url + "/wiki/demo-example")[2] \
            .decode()
        client.close()
        server.stop()

        server.start()
        fresh = HTTPBackend(server.url)
        fresh.replace_latest(minimal_entry(overview="Patched."))
        page = fetch(server.url + "/wiki/demo-example")[2].decode()
        assert "Patched." in page  # the new cache heard the write
        fresh.close()
        server.stop()
        service.close()

    def test_port_property_requires_running_server(self):
        server = RepositoryServer(RepositoryService(MemoryBackend()))
        with pytest.raises(StorageError, match="not running"):
            _ = server.port

    def test_bare_backend_is_wrapped_in_a_service(self):
        server = RepositoryServer(MemoryBackend())
        assert isinstance(server.service, RepositoryService)

    def test_async_facade_is_unwrapped_to_its_sync_service(self):
        service = RepositoryService(MemoryBackend())
        aservice = AsyncRepositoryService(service)
        server = RepositoryServer(aservice)
        assert server.service is service

    def test_closed_client_refuses_requests(self, served):
        _server, client = served
        client.add(minimal_entry())
        client.close()
        with pytest.raises(StorageError, match="closed"):
            client.identifiers()

    def test_client_rejects_non_http_urls(self):
        with pytest.raises(StorageError, match="http://"):
            HTTPBackend("ftp://example.org")


def raw_get(port: int, path: str, **headers):
    """One GET over a dedicated connection, headers fully controlled."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request("GET", path, headers=headers)
        response = connection.getresponse()
        return response.status, dict(response.headers), response.read()
    finally:
        connection.close()


class TestConditionalReads:
    def test_200_carries_a_weak_etag(self, served):
        server, client = served
        client.add(minimal_entry())
        status, headers, _body = raw_get(server.port,
                                         "/entries/demo-example")
        assert status == 200
        assert headers["ETag"].startswith('W/"')

    def test_if_none_match_answers_304_with_no_body(self, served):
        server, client = served
        client.add(minimal_entry())
        _status, headers, body = raw_get(server.port,
                                         "/entries/demo-example")
        status, revalidated, nothing = raw_get(
            server.port, "/entries/demo-example",
            **{"If-None-Match": headers["ETag"]})
        assert status == 304
        assert nothing == b""
        assert revalidated["ETag"] == headers["ETag"]
        assert len(body) > 0  # the 200 did carry the entry

    def test_a_write_anywhere_moves_the_entry_etag(self, served):
        server, client = served
        client.add_many(entry_batch(2))
        _s, before, _b = raw_get(server.port, "/entries/entry-0")
        client.replace_latest(minimal_entry(title="ENTRY 1",
                                            overview="Patched."))
        status, after, _b = raw_get(
            server.port, "/entries/entry-0",
            **{"If-None-Match": before["ETag"]})
        # The service-token ETag is deliberately coarse: ANY write
        # moves it, so revalidation misses and a fresh 200 arrives.
        assert status == 200
        assert after["ETag"] != before["ETag"]

    def test_wiki_etag_survives_writes_elsewhere(self, served):
        server, client = served
        client.add_many(entry_batch(2))
        _s, before, _b = raw_get(server.port, "/wiki/entry-0")
        client.replace_latest(minimal_entry(title="ENTRY 1",
                                            overview="Patched."))
        status, after, _b = raw_get(
            server.port, "/wiki/entry-0",
            **{"If-None-Match": before["ETag"]})
        # Finer than the service token: entry-1's write leaves
        # entry-0's page revalidatable.
        assert status == 304
        assert after["ETag"] == before["ETag"]

    def test_wiki_etag_moves_with_its_own_entry(self, served):
        server, client = served
        client.add_many(entry_batch(2))
        _s, before, _b = raw_get(server.port, "/wiki/entry-0")
        client.replace_latest(minimal_entry(title="ENTRY 0",
                                            overview="Patched."))
        status, _after, body = raw_get(
            server.port, "/wiki/entry-0",
            **{"If-None-Match": before["ETag"]})
        assert status == 200
        assert "Patched." in body.decode("utf-8")

    def test_versioned_and_latest_etags_are_distinct(self, served):
        server, client = served
        client.add(minimal_entry())
        _s, latest, _b = raw_get(server.port, "/entries/demo-example")
        _s, pinned, _b = raw_get(server.port,
                                 "/entries/demo-example?version=0.1")
        assert latest["ETag"] != pinned["ETag"]

    def test_stats_is_conditional_too(self, served):
        server, client = served
        client.add(minimal_entry())
        _s, headers, _b = raw_get(server.port, "/stats")
        status, _h, _b = raw_get(server.port, "/stats",
                                 **{"If-None-Match": headers["ETag"]})
        assert status == 304

    def test_client_serves_304_hits_from_its_validation_cache(
            self, served):
        server, client = served
        client.add(minimal_entry())
        first = client.get("demo-example")
        second = client.get("demo-example")
        # Same immutable snapshot object: the 304 answered from cache.
        assert second is first
        assert client.wire_cache_stats()["validation"]["hits"] == 1
        metrics = server.metrics.snapshot()
        assert metrics["conditional"]["not_modified"] == 1
        assert metrics["conditional"]["hit_rate"] == 1.0

    def test_client_revalidation_miss_fetches_fresh_content(self, served):
        _server, client = served
        client.add(minimal_entry())
        client.get("demo-example")
        client.replace_latest(minimal_entry(overview="Patched."))
        assert client.get("demo-example").overview == "Patched."

    def test_malformed_if_none_match_is_a_400(self, served):
        server, client = served
        client.add(minimal_entry())
        for bad in ("not-quoted", 'W/"ok", ???', '"unterminated'):
            status, _h, body = raw_get(server.port,
                                       "/entries/demo-example",
                                       **{"If-None-Match": bad})
            detail = json.loads(body)["error"]
            assert status == 400, bad
            assert detail["type"] == "StorageError"
            assert "If-None-Match" in detail["message"]


class TestCompression:
    def test_large_response_is_gzipped_when_accepted(self, served):
        server, client = served
        client.add(minimal_entry(overview="tok " * 2000))
        status, headers, body = raw_get(server.port,
                                        "/entries/demo-example",
                                        **{"Accept-Encoding": "gzip"})
        assert status == 200
        assert headers.get("Content-Encoding") == "gzip"
        payload = json.loads(gzip.decompress(body))
        assert payload["entry"]["overview"].startswith("tok ")

    def test_small_response_stays_identity(self, served):
        server, client = served
        client.add(minimal_entry())
        _s, headers, body = raw_get(server.port, "/entries/demo-example/has",
                                    **{"Accept-Encoding": "gzip"})
        assert "Content-Encoding" not in headers
        assert json.loads(body) == {"has": True}

    def test_no_accept_encoding_means_identity(self, served):
        server, client = served
        client.add(minimal_entry(overview="tok " * 2000))
        _s, headers, body = raw_get(server.port, "/entries/demo-example")
        assert "Content-Encoding" not in headers
        json.loads(body)  # plain JSON, not gzip bytes

    def test_client_inflates_transparently(self, served):
        _server, client = served
        big = minimal_entry(overview="tok " * 2000)
        client.add(big)
        assert client.get("demo-example") == big

    def test_unacceptable_accept_encoding_is_a_406(self, served):
        server, client = served
        client.add(minimal_entry())
        status, _h, body = raw_get(
            server.port, "/entries/demo-example",
            **{"Accept-Encoding": "identity;q=0, *;q=0"})
        detail = json.loads(body)["error"]
        assert status == 406
        assert detail["type"] == "StorageError"
        assert "Accept-Encoding" in detail["message"]

    def test_unknown_codings_are_ignored_not_406(self, served):
        server, client = served
        client.add(minimal_entry())
        status, _h, _b = raw_get(server.port, "/entries/demo-example",
                                 **{"Accept-Encoding": "br, deflate"})
        assert status == 200

    def test_unknown_content_encoding_is_a_415(self, served):
        server, _client = served
        request = urllib.request.Request(
            server.url + "/query", data=b"{}",
            headers={"Content-Type": "application/json",
                     "Content-Encoding": "br"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 415
        detail = json.loads(caught.value.read())["error"]
        assert "Content-Encoding" in detail["message"]

    def test_gzipped_request_body_is_accepted(self, served):
        server, client = served
        entry = minimal_entry()
        raw = json.dumps({"entry": entry.to_dict()}).encode("utf-8")
        request = urllib.request.Request(
            server.url + "/entries", data=gzip.compress(raw),
            headers={"Content-Type": "application/json",
                     "Content-Encoding": "gzip"},
            method="POST")
        with urllib.request.urlopen(request) as response:
            assert response.status == 201
        assert client.get("demo-example") == entry

    def test_corrupt_gzip_request_body_is_a_400(self, served):
        server, _client = served
        request = urllib.request.Request(
            server.url + "/query", data=b"\x1f\x8bnot really gzip",
            headers={"Content-Type": "application/json",
                     "Content-Encoding": "gzip"},
            method="POST")
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(request)
        assert caught.value.code == 400
        assert "gzip" in json.loads(caught.value.read())["error"]["message"]

    def test_client_gzips_large_request_bodies(self, served):
        """A bulk load whose JSON crosses the threshold travels
        compressed — observable as a round-trip that still works plus
        the server's gzip-request tolerance (no 415, same entries)."""
        _server, client = served
        batch = [minimal_entry(title=f"ENTRY {index}",
                               overview="tok " * 200)
                 for index in range(20)]
        assert client.add_many(batch) == 20
        assert client.entry_count() == 20


class TestStreamingBatches:
    def test_get_many_streams_and_matches_buffered(self, served):
        server, client = served
        client.add_many(entry_batch(10))
        requests = [f"entry-{index}" for index in range(10)]
        streamed = client.get_many(requests)
        buffered_client = HTTPBackend(server.url, stream_batches=False)
        assert buffered_client.get_many(requests) == streamed
        buffered_client.close()
        metrics = server.metrics.snapshot()
        assert metrics["stream"]["responses"] == 1
        assert metrics["stream"]["lines"] == 10

    def test_multi_page_stream(self, served):
        server, client = served
        count = STREAM_PAGE_SIZE + 20
        client.add_many(entry_batch(count))
        requests = [f"entry-{index}" for index in range(count)]
        entries = client.get_many(requests)
        assert [entry.title for entry in entries] == \
            [f"ENTRY {index}" for index in range(count)]
        assert server.metrics.snapshot()["stream"]["lines"] == count

    def test_iter_many_yields_incrementally(self, served):
        _server, client = served
        client.add_many(entry_batch(5))
        iterator = client.iter_many([f"entry-{i}" for i in range(5)])
        assert next(iterator).identifier == "entry-0"
        assert [entry.identifier for entry in iterator] == \
            [f"entry-{i}" for i in range(1, 5)]

    def test_abandoned_iterator_does_not_poison_the_connection(
            self, served):
        _server, client = served
        client.add_many(entry_batch(4))
        iterator = client.iter_many([f"entry-{i}" for i in range(4)])
        next(iterator)
        iterator.close()  # mid-stream: the connection is dropped...
        assert client.entry_count() == 4  # ...and the next call works

    def test_versions_many_streams(self, served):
        server, client = served
        client.add_many(entry_batch(3))
        client.add_version(minimal_entry(title="ENTRY 0",
                                         version=Version(0, 2)))
        listing = client.versions_many(["entry-0", "entry-1", "entry-2"])
        assert listing["entry-0"] == [Version(0, 1), Version(0, 2)]
        assert listing["entry-1"] == [Version(0, 1)]
        assert server.metrics.snapshot()["stream"]["responses"] >= 1

    def test_error_in_the_first_page_is_an_ordinary_status(self, served):
        _server, client = served
        client.add_many(entry_batch(2))
        with pytest.raises(EntryNotFound) as caught:
            client.get_many(["entry-0", "ghost"])
        assert caught.value.identifier == "ghost"
        assert client.entry_count() == 2  # connection still in sync

    def test_error_on_a_later_page_arrives_as_a_frame(self, served):
        """Once the 200 and the first chunks are on the wire, a failure
        can only travel in-band: the client must re-raise it as the
        same exception class after consuming the good prefix."""
        _server, client = served
        count = STREAM_PAGE_SIZE + 5
        client.add_many(entry_batch(count))
        requests = [f"entry-{index}" for index in range(count)]
        requests[STREAM_PAGE_SIZE + 2] = "ghost"  # page two fails
        received = []
        with pytest.raises(EntryNotFound) as caught:
            for entry in client.iter_many(requests):
                received.append(entry)
        assert caught.value.identifier == "ghost"
        assert len(received) == STREAM_PAGE_SIZE  # page one arrived whole
        assert client.entry_count() == count  # stream stayed framed

    def test_warm_streams_hit_the_wire_memos(self, served):
        server, client = served
        client.add_many(entry_batch(8))
        requests = [f"entry-{index}" for index in range(8)]
        client.get_many(requests)
        cold_server = server.wire_memo.stats()
        client.get_many(requests)
        warm_server = server.wire_memo.stats()
        # Second pass: every line from the encode memo (no fetch, no
        # dumps) on the server, every entry from the line memo (no
        # loads, no from_dict) on the client.
        assert warm_server["hits"] == cold_server["hits"] + 8
        assert client.wire_cache_stats()["line_memo"]["hits"] == 8

    def test_a_write_orphans_the_wire_memo_lines(self, served):
        server, client = served
        client.add_many(entry_batch(2))
        client.get_many(["entry-0", "entry-1"])
        client.replace_latest(minimal_entry(title="ENTRY 0",
                                            overview="Patched."))
        entries = client.get_many(["entry-0", "entry-1"])
        assert entries[0].overview == "Patched."
        # The token moved, so the warm lines were unfindable.
        assert server.wire_memo.stats()["hits"] == 0

    def test_streamed_bodies_gzip_end_to_end(self, served):
        """The NDJSON stream negotiates gzip like sized bodies do, and
        the incremental inflater still yields per-page lines."""
        server, client = served
        client.add_many([minimal_entry(title=f"ENTRY {i}",
                                       overview="tok " * 300)
                         for i in range(6)])
        entries = client.get_many([f"entry-{i}" for i in range(6)])
        assert len(entries) == 6
        metrics = server.metrics.snapshot()
        assert metrics["gzip"]["responses"] >= 1
        assert metrics["gzip"]["bytes_saved_ratio"] > 0.5


def read_scripted_request(rfile):
    """Parse one HTTP request off a raw socket file."""
    request_line = rfile.readline()
    headers = {}
    while True:
        line = rfile.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", 0))
    body = rfile.read(length) if length else b""
    return request_line.decode("latin-1"), headers, body


class ScriptedServer:
    """A raw socket peer speaking just enough HTTP for one scenario.

    Each handler in ``scripts`` gets one accepted connection (after its
    request has been read) and decides how to misbehave: close without
    answering, truncate a stream, or answer properly.  This is how the
    client's failure handling is pinned deterministically — a real
    server cannot be told to die at an exact protocol position.
    """

    def __init__(self, *scripts):
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self.url = f"http://127.0.0.1:{self.port}"
        self.requests = []
        self._scripts = list(scripts)
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        for script in self._scripts:
            try:
                connection, _ = self.sock.accept()
            except OSError:  # closed while waiting
                return
            with connection:
                rfile = connection.makefile("rb")
                self.requests.append(read_scripted_request(rfile))
                script(connection)
                rfile.close()

    def close(self):
        self.sock.close()
        self._thread.join(timeout=5)


def scripted_response(connection, body: bytes, status: str = "200 OK",
                      content_type: str = "application/json"):
    connection.sendall(
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n".encode("latin-1") + body)


def chunk(data: bytes) -> bytes:
    return f"{len(data):x}\r\n".encode("ascii") + data + b"\r\n"


def ndjson_head() -> bytes:
    return (b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n")


class TestRetryOnStaleSocket:
    def test_write_retries_once_when_the_server_kills_the_socket(self):
        """The stale keep-alive signature: the server reads the whole
        request, then closes without a byte of response.  The send
        succeeded, so only the RemoteDisconnected response-phase retry
        can save the write — without it this add() dies with 'no
        response' even though the request was never processed."""
        def kill_after_reading(connection):
            pass  # the with-block closes the socket: FIN, no response

        def answer(connection):
            scripted_response(connection,
                              b'{"identifier": "demo-example"}',
                              status="201 Created")

        fake = ScriptedServer(kill_after_reading, answer)
        client = HTTPBackend(fake.url)
        try:
            client.add(minimal_entry())  # a WRITE, not a GET
        finally:
            client.close()
            fake.close()
        assert len(fake.requests) == 2  # one kill, one retry
        first, second = fake.requests
        assert first[0] == second[0]  # the same request, resent
        assert first[2] == second[2]

    def test_mid_stream_truncation_raises_a_storage_error(self):
        """An abrupt close inside the chunked NDJSON body (no end
        frame, no terminator) must surface as StorageError, not hang
        or silently yield a short result."""
        line = encode_entry(minimal_entry()).encode("utf-8")

        def truncate_mid_stream(connection):
            connection.sendall(ndjson_head() + chunk(line + b"\n"))
            # ...and vanish: no further chunks, no zero terminator.

        fake = ScriptedServer(truncate_mid_stream)
        client = HTTPBackend(fake.url)
        try:
            with pytest.raises(StorageError, match="mid-stream"):
                client.get_many(["demo-example", "other"])
        finally:
            client.close()
            fake.close()

    def test_missing_end_frame_raises_a_storage_error(self):
        """A well-formed chunked body that simply never sends the end
        frame is truncation too — the count handshake is what makes
        silent partial results impossible."""
        line = encode_entry(minimal_entry()).encode("utf-8")

        def finish_without_end_frame(connection):
            connection.sendall(ndjson_head() + chunk(line + b"\n")
                               + b"0\r\n\r\n")

        fake = ScriptedServer(finish_without_end_frame)
        client = HTTPBackend(fake.url)
        try:
            with pytest.raises(StorageError, match="without an end frame"):
                client.get_many(["demo-example", "other"])
        finally:
            client.close()
            fake.close()

    def test_end_frame_count_mismatch_raises(self):
        line = encode_entry(minimal_entry()).encode("utf-8")

        def lie_about_the_count(connection):
            frame = b'{"_stream": "end", "count": 5}\n'
            connection.sendall(ndjson_head() + chunk(line + b"\n")
                               + chunk(frame) + b"0\r\n\r\n")

        fake = ScriptedServer(lie_about_the_count)
        client = HTTPBackend(fake.url)
        try:
            with pytest.raises(StorageError, match="dropped lines"):
                client.get_many(["demo-example"])
        finally:
            client.close()
            fake.close()


class TestObservability:
    def test_stats_exposes_route_counters_and_wire_ratios(self, served):
        server, client = served
        client.add(minimal_entry(overview="tok " * 2000))
        client.get("demo-example")   # 200, gzipped (large), cached
        client.get("demo-example")   # revalidated: 304
        client.get_many(["demo-example"])  # one streamed batch
        payload = json.loads(fetch(server.url + "/stats")[2])
        section = payload["server"]
        assert section["requests"]["POST add"] == 1
        assert section["requests"]["GET get_entry"] == 2
        assert section["requests"]["POST batch_get"] == 1
        assert section["conditional"] == {
            "requests": 1, "not_modified": 1, "hit_rate": 1.0}
        assert section["gzip"]["responses"] >= 1
        assert 0 < section["gzip"]["bytes_saved_ratio"] < 1
        assert section["stream"] == {"responses": 1, "lines": 1}

    def test_stats_carries_the_change_token_and_wire_memo(self, served):
        server, client = served
        client.add(minimal_entry())
        payload = json.loads(fetch(server.url + "/stats")[2])
        assert isinstance(payload["change_token"], str)
        assert "wire_memo" in payload["cache"]

    def test_unrouted_requests_are_counted(self, served):
        server, _client = served
        fetch(server.url + "/nope")
        assert server.metrics.snapshot()["requests"]["unrouted"] == 1
