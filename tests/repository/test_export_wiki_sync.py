"""E2 rendering and E12 wiki-sync tests (export + wiki_sync)."""

from __future__ import annotations

import random
from dataclasses import replace

import pytest

from repro.core.errors import WikiSyncError
from repro.core.laws import CheckConfig, check_lens_laws
from repro.repository.entry import Comment, PropertyClaim
from repro.repository.export import (
    render_glossary_wikidot,
    render_markdown,
    render_wikidot,
)
from repro.repository.template import TEMPLATE
from repro.repository.versioning import Version
from repro.repository.wiki_sync import (
    WikiSyncLens,
    _random_entry,
    entry_space,
    normalise_entry,
    parse_wikidot,
    wikidot_space,
)
from tests.repository.test_entry import minimal_entry


class TestRenderWikidot:
    def test_all_template_sections_present(self):
        page = render_wikidot(minimal_entry())
        for spec in TEMPLATE:
            if spec.name in ("Title", "Version", "Type"):
                continue
            assert f"++ {spec.name}" in page, spec.name

    def test_title_and_metadata(self):
        page = render_wikidot(minimal_entry())
        assert page.startswith("+ DEMO EXAMPLE")
        assert "||~ Version || 0.1 ||" in page
        assert "||~ Type || PRECISE ||" in page

    def test_empty_sections_render_none_yet(self):
        """The paper's own §4 instance writes 'None yet'."""
        page = render_wikidot(minimal_entry())
        assert page.count("None yet") >= 3  # reviewers, comments, ...

    def test_negative_property_renders_not(self):
        entry = minimal_entry(properties=(
            PropertyClaim("undoable", holds=False),))
        assert "* Not undoable" in render_wikidot(entry)


class TestRenderMarkdown:
    def test_headings(self):
        text = render_markdown(minimal_entry())
        assert text.startswith("# DEMO EXAMPLE")
        assert "## Consistency Restoration" in text
        assert "### Forward" in text

    def test_glossary_page(self):
        page = render_glossary_wikidot()
        assert "+ Glossary of Bx Terms" in page
        assert "++ hippocratic" in page


class TestParseWikidot:
    def test_parse_inverts_render(self):
        entry = normalise_entry(minimal_entry())
        fields = parse_wikidot(render_wikidot(entry))
        assert fields["title"] == entry.title
        assert fields["version"] == entry.version
        assert fields["models"] == entry.models
        assert fields["restoration"] == entry.restoration

    def test_requires_title(self):
        with pytest.raises(WikiSyncError, match="TITLE"):
            parse_wikidot("++ Overview\nwords\n")

    def test_unknown_section_rejected(self):
        with pytest.raises(WikiSyncError, match="unknown section"):
            parse_wikidot("+ T\n++ Mystery\nwords\n")

    def test_unterminated_code_block(self):
        with pytest.raises(WikiSyncError, match="unterminated"):
            parse_wikidot("+ T\n++ Models\n+++ M\n[[code]]\nx\n")

    def test_bad_comment_bullet(self):
        with pytest.raises(WikiSyncError, match="comment"):
            parse_wikidot("+ T\n++ Comments\n* not the format\n")

    def test_partial_page_yields_partial_fields(self):
        fields = parse_wikidot("+ T\n++ Overview\nJust this.\n")
        assert fields == {"title": "T", "overview": "Just this."}


class TestWikiSyncLens:
    def test_round_trip_many_random_entries(self):
        rng = random.Random(99)
        lens = WikiSyncLens()
        for _ in range(150):
            entry = _random_entry(rng)
            assert lens.put(lens.get(entry), entry) == entry

    def test_lens_laws(self):
        report = check_lens_laws(
            WikiSyncLens(),
            config=CheckConfig(trials=60, seed=3, shrink=False))
        assert report.all_passed, report.summary()

    def test_put_merges_deleted_sections_from_old_entry(self):
        """A wiki edit that drops a section must not destroy curated
        content: the put restores it from the structured copy."""
        lens = WikiSyncLens()
        entry = normalise_entry(minimal_entry(
            comments=(Comment("Bob", "2014-03-28", "Keep me."),)))
        page = lens.get(entry)
        # Simulate a careless edit removing everything after Discussion.
        truncated = page.split("++ Discussion")[0]
        merged = lens.put(truncated, entry)
        assert merged.comments == entry.comments
        assert merged.authors == entry.authors
        assert merged.discussion == entry.discussion

    def test_put_applies_page_edits(self):
        lens = WikiSyncLens()
        entry = normalise_entry(minimal_entry())
        page = lens.get(entry).replace("A demo.", "An edited demo.")
        merged = lens.put(page, entry)
        assert merged.overview == "An edited demo."

    def test_create_fills_defaults(self):
        lens = WikiSyncLens()
        created = lens.create("+ FRESH\n++ Overview\nBrand new.\n")
        assert created.title == "FRESH"
        assert created.overview == "Brand new."
        assert created.version == Version(0, 1)
        assert created.authors  # placeholder author present


class TestNormalisation:
    def test_idempotent(self):
        rng = random.Random(5)
        for _ in range(50):
            entry = _random_entry(rng)
            assert normalise_entry(entry) == entry

    def test_collapses_whitespace(self):
        entry = minimal_entry(overview="Too   many\nspaces.")
        assert normalise_entry(entry).overview == "Too many spaces."

    def test_spaces_sample_their_own_members(self, rng):
        space = entry_space()
        sample = space.sample(rng)
        assert space.contains(sample)
        pages = wikidot_space()
        page = pages.sample(rng)
        assert pages.contains(page)
        assert not pages.contains("not a page at all")
