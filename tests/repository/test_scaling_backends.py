"""The scaling layer: sharded and replicated backends.

The conformance suite from ``test_backends`` is reused *unchanged* (the
whole point of the ``StorageBackend`` seam): :class:`TestConformance`
is subclassed here with a fixture that builds composite backends —
sharded over memory/sqlite/file children, replicated sqlite→file, and
sharded-over-replicated — so every contract test runs against each.

The classes below add what is specific to the composites: stable
routing and balance, parallel fan-out, mirroring, read failover, and
anti-entropy repair.
"""

from __future__ import annotations

import time

import pytest

from repro.core.errors import DuplicateEntry, EntryNotFound, StorageError
from repro.repository.backends import (
    FileBackend,
    MemoryBackend,
    ReplicatedBackend,
    ShardedBackend,
    SQLiteBackend,
    shard_index,
)
from repro.repository.versioning import Version
# Aliased so pytest does not re-collect the suite under its own name on
# top of the TestScalingConformance subclass below.
from tests.repository.test_backends import (
    TestConformance as ConformanceContract,
)
from tests.repository.test_entry import minimal_entry

SCALING_BACKENDS = [
    "sharded-memory",
    "sharded-sqlite",
    "sharded-file",
    "replicated-memory",
    "replicated-sqlite-file",
    "sharded-replicated",
]


def make_scaling_backend(kind: str, tmp_path):
    if kind == "sharded-memory":
        return ShardedBackend([MemoryBackend() for _shard in range(3)])
    if kind == "sharded-sqlite":
        return ShardedBackend.create("sqlite", tmp_path / "shards",
                                     shard_count=3)
    if kind == "sharded-file":
        return ShardedBackend.create("file", tmp_path / "shards",
                                     shard_count=3)
    if kind == "replicated-memory":
        return ReplicatedBackend(MemoryBackend(), [MemoryBackend()])
    if kind == "replicated-sqlite-file":
        return ReplicatedBackend(SQLiteBackend(tmp_path / "primary.db"),
                                 FileBackend(tmp_path / "replica"))
    # Sharding composes with replication: each shard is itself a
    # primary/replica pair.
    shards = [ReplicatedBackend(MemoryBackend(), [MemoryBackend()])
              for _shard in range(2)]
    return ShardedBackend(shards)


@pytest.fixture(params=SCALING_BACKENDS)
def backend(request, tmp_path):
    built = make_scaling_backend(request.param, tmp_path)
    yield built
    built.close()


class TestScalingConformance(ConformanceContract):
    """The unmodified contract, over every composite backend."""


def entry_batch(count: int, start: int = 0):
    return [minimal_entry(title=f"ENTRY {index}")
            for index in range(start, start + count)]


def assert_same_contents(left, right):
    """Two backends hold identical identifiers, histories and snapshots."""
    identifiers = left.identifiers()
    assert identifiers == right.identifiers()
    assert left.versions_many(identifiers) == \
        right.versions_many(identifiers)
    for identifier in identifiers:
        assert left.get(identifier) == right.get(identifier)


# ----------------------------------------------------------------------
# Test doubles.
# ----------------------------------------------------------------------

class SlowBackend(MemoryBackend):
    """A memory backend with simulated per-batch latency."""

    def __init__(self, delay: float) -> None:
        super().__init__()
        self.delay = delay

    def get_many(self, requests):
        time.sleep(self.delay)
        return super().get_many(requests)


class OutageBackend(MemoryBackend):
    """A memory backend whose operations can be switched to fail."""

    def __init__(self) -> None:
        super().__init__()
        self.down = False

    def _check(self):
        if self.down:
            raise ConnectionError("simulated outage")

    def get(self, identifier, version=None):
        self._check()
        return super().get(identifier, version)

    def get_many(self, requests):
        self._check()
        return super().get_many(requests)

    def identifiers(self):
        self._check()
        return super().identifiers()

    def add(self, entry):
        self._check()
        super().add(entry)

    def add_version(self, entry):
        self._check()
        super().add_version(entry)


class SpyBackend(MemoryBackend):
    """Counts batch calls and close()."""

    def __init__(self) -> None:
        super().__init__()
        self.add_many_calls = 0
        self.closed = False

    def add_many(self, entries):
        self.add_many_calls += 1
        return super().add_many(entries)

    def close(self):
        self.closed = True


# ----------------------------------------------------------------------
# Sharding specifics.
# ----------------------------------------------------------------------

class TestSharding:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(StorageError):
            ShardedBackend([])

    def test_routing_is_stable_and_exhaustive(self):
        backend = ShardedBackend([MemoryBackend() for _shard in range(4)])
        backend.add_many(entry_batch(40))
        for entry in entry_batch(40):
            identifier = entry.identifier
            index = shard_index(identifier, 4)
            # The routed shard holds the entry; no other shard does.
            assert backend.shards[index].has(identifier)
            others = [shard for position, shard
                      in enumerate(backend.shards) if position != index]
            assert not any(shard.has(identifier) for shard in others)
        backend.close()

    def test_shards_are_reasonably_balanced(self):
        backend = ShardedBackend([MemoryBackend() for _shard in range(4)])
        backend.add_many(entry_batch(200))
        sizes = backend.shard_sizes()
        assert sum(sizes) == 200
        assert backend.entry_count() == 200
        assert min(sizes) >= 20  # CRC-32 spreads ~50 per shard
        backend.close()

    def test_get_many_preserves_request_order(self):
        backend = ShardedBackend([MemoryBackend() for _shard in range(3)])
        batch = entry_batch(12)
        backend.add_many(batch)
        wanted = [entry.identifier for entry in reversed(batch)]
        results = backend.get_many(wanted)
        assert [entry.identifier for entry in results] == wanted
        backend.close()

    def test_fan_out_runs_children_in_parallel(self):
        delay = 0.05
        backend = ShardedBackend([SlowBackend(delay) for _shard in range(4)])
        batch = entry_batch(40)
        backend.add_many(batch)
        identifiers = [entry.identifier for entry in batch]
        start = time.perf_counter()
        backend.get_many(identifiers)
        elapsed = time.perf_counter() - start
        # Serial execution would cost 4 * delay; parallel ~1 * delay.
        assert elapsed < 3 * delay
        backend.close()

    def test_add_many_is_one_bulk_call_per_shard(self):
        shards = [SpyBackend() for _shard in range(3)]
        backend = ShardedBackend(shards)
        assert backend.add_many(entry_batch(30)) == 30
        assert [shard.add_many_calls for shard in shards] == [1, 1, 1]

    def test_fan_out_propagates_lookup_errors(self):
        backend = ShardedBackend([MemoryBackend() for _shard in range(3)])
        backend.add_many(entry_batch(6))
        with pytest.raises(EntryNotFound):
            backend.get_many(["entry-0", "nope-1", "nope-2", "entry-1"])
        backend.close()

    def test_create_builds_durable_shards(self, tmp_path):
        backend = ShardedBackend.create("sqlite", tmp_path / "cluster",
                                        shard_count=2)
        backend.add_many(entry_batch(8))
        backend.close()
        assert (tmp_path / "cluster" / "shard-00.db").is_file()
        assert (tmp_path / "cluster" / "shard-01.db").is_file()
        reopened = ShardedBackend.create("sqlite", tmp_path / "cluster",
                                         shard_count=2)
        assert reopened.entry_count() == 8
        reopened.close()

    def test_create_rejects_bad_arguments(self, tmp_path):
        with pytest.raises(StorageError):
            ShardedBackend.create("memory", tmp_path)
        with pytest.raises(StorageError):
            ShardedBackend.create("sqlite", tmp_path, shard_count=0)

    def test_close_closes_every_child(self):
        shards = [SpyBackend() for _shard in range(3)]
        ShardedBackend(shards).close()
        assert all(shard.closed for shard in shards)


# ----------------------------------------------------------------------
# Replication specifics.
# ----------------------------------------------------------------------

class TestReplication:
    def test_writes_mirror_to_every_replica(self):
        replicas = [MemoryBackend(), MemoryBackend()]
        backend = ReplicatedBackend(MemoryBackend(), replicas)
        backend.add(minimal_entry())
        backend.add_version(minimal_entry(version=Version(0, 2)))
        backend.replace_latest(minimal_entry(version=Version(0, 2),
                                             overview="Patched."))
        backend.add_many(entry_batch(3))
        for replica in replicas:
            assert_same_contents(backend.primary, replica)
        assert backend.replica_write_failures == 0

    def test_primary_failure_fails_the_write_and_mirrors_nothing(self):
        replica = MemoryBackend()
        backend = ReplicatedBackend(MemoryBackend(), replica)
        backend.add(minimal_entry())
        with pytest.raises(DuplicateEntry):
            backend.add(minimal_entry())
        assert replica.versions("demo-example") == [Version(0, 1)]

    def test_replica_failure_is_swallowed_and_counted(self):
        replica = OutageBackend()
        backend = ReplicatedBackend(MemoryBackend(), replica)
        replica.down = True
        backend.add(minimal_entry())  # primary write still succeeds
        assert backend.replica_write_failures == 1
        assert backend.primary.has("demo-example")
        replica.down = False
        report = backend.anti_entropy()
        assert report.entries_copied == 1
        assert_same_contents(backend.primary, replica)

    def test_reads_fail_over_to_a_replica(self):
        primary = OutageBackend()
        backend = ReplicatedBackend(primary, MemoryBackend())
        backend.add(minimal_entry())
        primary.down = True
        assert backend.get("demo-example").title == "DEMO EXAMPLE"
        assert backend.identifiers() == ["demo-example"]

    def test_semantic_errors_do_not_fail_over(self):
        """EntryNotFound is an answer, not an outage — even when a
        diverged replica could have answered."""
        replica = MemoryBackend()
        replica.add(minimal_entry())  # replica-only entry
        backend = ReplicatedBackend(MemoryBackend(), replica)
        with pytest.raises(EntryNotFound):
            backend.get("demo-example")

    def test_read_failure_everywhere_raises_the_replica_error(self):
        primary, replica = OutageBackend(), OutageBackend()
        backend = ReplicatedBackend(primary, replica)
        backend.add(minimal_entry())
        primary.down = replica.down = True
        with pytest.raises(ConnectionError):
            backend.get("demo-example")


class TestAntiEntropy:
    def test_fresh_replica_receives_everything(self):
        primary = MemoryBackend()
        primary.add_many(entry_batch(4))
        primary.add_version(minimal_entry(title="ENTRY 0",
                                          version=Version(0, 2)))
        backend = ReplicatedBackend(primary, MemoryBackend())
        report = backend.anti_entropy()
        assert report.entries_copied == 4
        assert report.versions_appended == 1
        assert report.changed
        assert_same_contents(primary, backend.replicas[0])

    def test_behind_replica_receives_the_tail(self):
        backend = ReplicatedBackend(MemoryBackend(), MemoryBackend())
        backend.add(minimal_entry())
        # Divergence: versions land on the primary behind the mirror.
        backend.primary.add_version(minimal_entry(version=Version(0, 2)))
        backend.primary.add_version(minimal_entry(version=Version(0, 3)))
        report = backend.anti_entropy()
        assert report.entries_copied == 0
        assert report.versions_appended == 2
        assert_same_contents(backend.primary, backend.replicas[0])

    def test_divergent_latest_payload_is_replaced(self):
        backend = ReplicatedBackend(MemoryBackend(), MemoryBackend())
        backend.add(minimal_entry())
        backend.primary.replace_latest(minimal_entry(overview="Newer."))
        report = backend.anti_entropy()
        assert report.payloads_replaced == 1
        assert backend.replicas[0].get("demo-example").overview == "Newer."

    def test_replica_only_history_is_a_conflict_not_a_deletion(self):
        replica = MemoryBackend()
        backend = ReplicatedBackend(MemoryBackend(), replica)
        backend.add(minimal_entry())
        replica.add_version(minimal_entry(version=Version(0, 9),
                                          overview="Rogue."))
        report = backend.anti_entropy()
        assert len(report.conflicts) == 1
        assert "diverged" in report.conflicts[0]
        # Nothing was destroyed.
        assert replica.versions("demo-example") == \
            [Version(0, 1), Version(0, 9)]

    def test_replica_only_entry_is_a_conflict(self):
        replica = MemoryBackend()
        replica.add(minimal_entry(title="ROGUE ENTRY"))
        backend = ReplicatedBackend(MemoryBackend(), replica)
        backend.add(minimal_entry())
        report = backend.anti_entropy()
        assert any("unknown to the primary" in conflict
                   for conflict in report.conflicts)
        assert replica.has("rogue-entry")

    def test_repair_is_idempotent(self):
        primary = MemoryBackend()
        primary.add_many(entry_batch(5))
        backend = ReplicatedBackend(primary, MemoryBackend())
        assert backend.anti_entropy().changed
        second = backend.anti_entropy()
        assert not second.changed
        assert second.conflicts == []

    def test_repairs_durable_file_replica_of_sqlite_primary(self, tmp_path):
        """The §5.4 scenario: sqlite primary, wiki-independent file copy."""
        primary = SQLiteBackend(tmp_path / "primary.db")
        primary.add_many(entry_batch(6))
        backend = ReplicatedBackend(primary,
                                    FileBackend(tmp_path / "copy"))
        report = backend.anti_entropy()
        assert report.entries_copied == 6
        assert_same_contents(primary, backend.replicas[0])
        backend.close()


# ----------------------------------------------------------------------
# Composite instrumentation: every child counted exactly once.
# ----------------------------------------------------------------------

class ProbeBackend(MemoryBackend):
    """A memory backend whose cache_stats carry a unique tag, so a
    merged composite report can be audited child by child."""

    def __init__(self, tag: str) -> None:
        super().__init__()
        self.tag = tag

    def cache_stats(self):
        return {"probe": {"children": 1},
                f"probe:{self.tag}": {"children": 1}}


class TestCompositeStats:
    """cache_stats()/query_stats() over composites must include every
    child exactly once — no child skipped, none double-counted — and
    that must survive nesting (sharded-of-replicated)."""

    def test_sharded_cache_stats_sum_each_shard_once(self):
        backend = ShardedBackend([ProbeBackend(f"s{i}") for i in range(3)])
        stats = backend.cache_stats()
        assert stats["probe"] == {"children": 3}
        for index in range(3):
            assert stats[f"probe:s{index}"] == {"children": 1}
        backend.close()

    def test_replicated_cache_stats_cover_every_copy_once(self):
        backend = ReplicatedBackend(
            ProbeBackend("primary"),
            [ProbeBackend("r0"), ProbeBackend("r1")])
        stats = backend.cache_stats()
        assert stats["probe"] == {"children": 3}
        assert set(stats) == {"probe", "probe:primary",
                              "probe:r0", "probe:r1"}

    def test_nested_sharded_of_replicated_counts_leaves_once(self):
        shards = [
            ReplicatedBackend(ProbeBackend(f"p{i}"),
                              [ProbeBackend(f"r{i}")])
            for i in range(2)
        ]
        backend = ShardedBackend(shards)
        stats = backend.cache_stats()
        # Four leaves in the tree, each contributing exactly one unit.
        assert stats["probe"] == {"children": 4}
        assert set(stats) == {"probe", "probe:p0", "probe:r0",
                              "probe:p1", "probe:r1"}
        backend.close()

    def test_service_merges_composite_stats_next_to_its_lru(self):
        shards = [ReplicatedBackend(ProbeBackend(f"p{i}"),
                                    [ProbeBackend(f"r{i}")])
                  for i in range(2)]
        from repro.repository.service import RepositoryService
        service = RepositoryService(ShardedBackend(shards))
        stats = service.cache_stats()
        assert stats["probe"] == {"children": 4}
        assert "entry_cache" in stats
        service.close()

    def test_sharded_query_stats_count_each_entry_once(self):
        backend = ShardedBackend([MemoryBackend() for _shard in range(3)])
        reference = MemoryBackend()
        for store in (backend, reference):
            store.add_many(entry_batch(12))
        stats = backend.query_stats(["entry", "demo"])
        expected = reference.query_stats(["entry", "demo"])
        assert stats.document_count == 12
        assert stats.document_frequency == expected.document_frequency
        backend.close()

    def test_nested_query_stats_do_not_double_count_replicas(self):
        """A replicated shard holds the same corpus on every copy;
        stats must come from *one* copy, or IDF would be diluted by
        the replica count."""
        shards = [ReplicatedBackend(MemoryBackend(),
                                    [MemoryBackend(), MemoryBackend()])
                  for _shard in range(2)]
        backend = ShardedBackend(shards)
        reference = MemoryBackend()
        for store in (backend, reference):
            store.add_many(entry_batch(10))
        stats = backend.query_stats(["entry"])
        expected = reference.query_stats(["entry"])
        assert stats.document_count == 10  # not 30
        assert stats.document_frequency == expected.document_frequency
        backend.close()
