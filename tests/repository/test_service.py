"""The RepositoryService facade: cache coherence, batching, events,
incremental search — over every backend."""

from __future__ import annotations

import pytest

from repro.core.errors import DuplicateEntry, EntryNotFound
from repro.repository.backends import (
    FileBackend,
    MemoryBackend,
    SQLiteBackend,
)
from repro.repository.curation import CuratedRepository, Role, User
from repro.repository.search import SearchIndex
from repro.repository.service import RepositoryEvent, RepositoryService
from repro.repository.store import RepositoryStore
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry


@pytest.fixture(params=["memory", "file", "sqlite"])
def service(request, tmp_path):
    if request.param == "memory":
        backend = MemoryBackend()
    elif request.param == "file":
        backend = FileBackend(tmp_path / "repo")
    else:
        backend = SQLiteBackend(tmp_path / "repo.db")
    built = RepositoryService(backend)
    yield built
    built.close()


def entry_batch(count: int):
    return [minimal_entry(title=f"ENTRY {index}") for index in range(count)]


class TestFacadeBasics:
    def test_is_a_repository_store(self):
        assert issubclass(RepositoryService, RepositoryStore)

    def test_default_backend_is_memory(self):
        service = RepositoryService()
        assert isinstance(service.backend, MemoryBackend)

    def test_point_operations_delegate(self, service):
        entry = minimal_entry()
        service.add(entry)
        assert service.get("demo-example") == entry
        assert service.has("demo-example")
        assert service.identifiers() == ["demo-example"]
        assert service.entry_count() == 1
        assert service.versions("demo-example") == [Version(0, 1)]


class TestChangeToken:
    """The wire validator: never None on a service, moves per write."""

    def test_every_backend_has_a_token_through_the_facade(self, service):
        token = service.change_token()
        assert isinstance(token, str) and token

    def test_token_moves_on_every_write_kind(self, service):
        seen = {service.change_token()}
        service.add(minimal_entry())
        seen.add(service.change_token())
        service.add_version(minimal_entry(version=Version(0, 2)))
        seen.add(service.change_token())
        service.replace_latest(
            minimal_entry(version=Version(0, 2), overview="Patched."))
        seen.add(service.change_token())
        assert len(seen) == 4  # all distinct

    def test_token_stable_across_reads(self, service):
        service.add(minimal_entry())
        token = service.change_token()
        service.get("demo-example")
        service.identifiers()
        assert service.change_token() == token

    def test_durable_counter_wins_when_available(self, service):
        """Backends with a persisted counter expose it as ``c<n>`` —
        so a foreign process's writes are visible in the token; the
        epoch+sequence overlay only covers counterless backends."""
        service.add(minimal_entry())
        counter = service.change_counter()
        token = service.change_token()
        if counter is not None:
            assert token == f"c{counter}"
        else:
            assert token.startswith("e")

    def test_invalidate_moves_the_overlay_token(self):
        service = RepositoryService(MemoryBackend())
        token = service.change_token()
        service.invalidate()
        assert service.change_token() != token


class TestCache:
    def test_repeated_get_hits_cache(self, service):
        service.invalidate()
        service.add(minimal_entry())
        service.invalidate()  # start cold
        first = service.get("demo-example")
        info = service.cache_info()
        assert info["misses"] >= 1
        hits_before = info["hits"]
        assert service.get("demo-example") is first
        assert service.cache_info()["hits"] == hits_before + 1

    def test_explicit_version_primed_by_latest_get(self, service):
        service.add(minimal_entry())
        service.invalidate()
        latest = service.get("demo-example")
        # The latest fetch also pinned (identifier, 0.1).
        assert service.get("demo-example", Version(0, 1)) is latest

    def test_coherent_after_replace_latest(self, service):
        service.add(minimal_entry())
        service.get("demo-example")  # warm the cache
        service.replace_latest(minimal_entry(overview="Patched."))
        assert service.get("demo-example").overview == "Patched."
        assert service.get("demo-example",
                           Version(0, 1)).overview == "Patched."

    def test_coherent_after_add_version(self, service):
        service.add(minimal_entry())
        service.get("demo-example")  # warm the "latest" slot
        service.add_version(minimal_entry(version=Version(0, 2),
                                          overview="Better."))
        assert service.get("demo-example").version == Version(0, 2)
        # The old explicit version still resolves to the old snapshot.
        assert service.get("demo-example",
                           Version(0, 1)).overview == "A demo."

    def test_failed_write_leaves_cache_coherent(self, service):
        service.add(minimal_entry())
        warm = service.get("demo-example")
        with pytest.raises(DuplicateEntry):
            service.add(minimal_entry(overview="Impostor."))
        assert service.get("demo-example") is warm

    def test_lru_eviction(self, tmp_path):
        service = RepositoryService(MemoryBackend(), cache_size=2)
        service.add_many(entry_batch(3))
        service.invalidate()
        for identifier in ("entry-0", "entry-1", "entry-2"):
            service.get(identifier)
        assert service.cache_info()["currsize"] <= 2

    def test_invalidate_one_identifier(self, service):
        service.add_many(entry_batch(2))
        service.get("entry-0")
        service.get("entry-1")
        service.invalidate("entry-0")
        info = service.cache_info()
        service.get("entry-1")  # still cached
        assert service.cache_info()["hits"] == info["hits"] + 1
        service.get("entry-0")  # refetched
        assert service.cache_info()["misses"] == info["misses"] + 1


class TestBatching:
    def test_add_many_and_get_many(self, service):
        batch = entry_batch(4)
        assert service.add_many(batch) == 4
        results = service.get_many([e.identifier for e in batch])
        assert results == batch

    def test_get_many_serves_from_cache(self, service):
        service.add_many(entry_batch(3))
        # add_many wrote through the cache, so this is all hits.
        before = service.cache_info()
        service.get_many(["entry-0", "entry-1", "entry-2"])
        after = service.cache_info()
        assert after["hits"] == before["hits"] + 3
        assert after["misses"] == before["misses"]

    def test_get_many_mixed_cache_states(self, service):
        service.add_many(entry_batch(3))
        service.invalidate("entry-1")
        results = service.get_many([
            ("entry-0", None),
            ("entry-1", Version(0, 1)),
            "entry-2",
        ])
        assert [e.identifier for e in results] == \
            ["entry-0", "entry-1", "entry-2"]

    def test_versions_many(self, service):
        service.add_many(entry_batch(2))
        service.add_version(minimal_entry(title="ENTRY 0",
                                          version=Version(0, 2)))
        assert service.versions_many(["entry-0", "entry-1"]) == {
            "entry-0": [Version(0, 1), Version(0, 2)],
            "entry-1": [Version(0, 1)],
        }


class TestEvents:
    def test_every_write_kind_emits(self, service):
        seen: list[RepositoryEvent] = []
        service.subscribe(seen.append)
        service.add(minimal_entry())
        service.add_version(minimal_entry(version=Version(0, 2)))
        service.replace_latest(
            minimal_entry(version=Version(0, 2), overview="Patched."))
        assert [event.kind for event in seen] == \
            ["add", "add_version", "replace_latest"]
        assert all(event.identifier == "demo-example" for event in seen)
        assert seen[-1].entry.overview == "Patched."

    def test_add_many_emits_per_entry(self, service):
        seen: list[RepositoryEvent] = []
        service.subscribe(seen.append)
        service.add_many(entry_batch(3))
        assert [event.kind for event in seen] == ["add"] * 3

    def test_failed_write_emits_nothing(self, service):
        seen: list[RepositoryEvent] = []
        service.subscribe(seen.append)
        with pytest.raises(EntryNotFound):
            service.add_version(minimal_entry())
        assert seen == []

    def test_partial_add_many_still_reports_stored_entries(self):
        """A prefix stored by a failing non-transactional bulk load is
        announced, so subscribers (the search index) stay coherent."""
        service = RepositoryService(MemoryBackend())
        seen: list[RepositoryEvent] = []
        service.subscribe(seen.append)
        batch = entry_batch(2) + [minimal_entry(title="ENTRY 0")]
        with pytest.raises(DuplicateEntry):
            service.add_many(batch)
        assert service.backend.entry_count() == 2  # the stored prefix
        assert sorted(event.identifier for event in seen) == \
            ["entry-0", "entry-1"]

    def test_unsubscribe(self, service):
        seen: list[RepositoryEvent] = []
        unsubscribe = service.subscribe(seen.append)
        service.add(minimal_entry(title="ENTRY 0"))
        unsubscribe()
        service.add(minimal_entry(title="ENTRY 1"))
        assert len(seen) == 1


class TestIncrementalSearch:
    def test_query_sees_later_writes(self, service):
        service.add_many(entry_batch(2))
        assert service.query("demo").hits  # lazily ready, any backend
        service.add(minimal_entry(title="ZYGOMORPH",
                                  overview="A very distinctive flower."))
        hits = service.query("zygomorph").hits
        assert [hit.identifier for hit in hits] == ["zygomorph"]

    def test_search_shim_is_gone(self):
        """The deprecated free-text shim was removed: ``query()`` is
        the one retrieval surface (SearchIndex keeps its own search)."""
        assert not hasattr(RepositoryService, "search")

    def test_updates_are_incremental_not_rebuilds(self, service, monkeypatch):
        service.add_many(entry_batch(2))
        index = service.enable_search()

        def forbidden_build(store):  # pragma: no cover - fails the test
            raise AssertionError("full rebuild after a single write")

        monkeypatch.setattr(index, "build", forbidden_build)
        service.add_version(minimal_entry(title="ENTRY 0",
                                          version=Version(0, 2),
                                          overview="Sharper text."))
        hits = index.search("sharper")
        assert [hit.identifier for hit in hits] == ["entry-0"]
        assert hits[0].entry.version == Version(0, 2)

    def test_replace_latest_reindexes(self, service):
        service.add(minimal_entry(overview="Original ephemeral text."))
        service.enable_search()
        service.replace_latest(minimal_entry(overview="Quixotic rewrite."))
        assert service.query("quixotic").hits
        assert not service.query("ephemeral").hits  # the old text is gone

    def test_disable_search_detaches(self, service):
        service.add(minimal_entry())
        index = service.enable_search()
        service.disable_search()
        assert service.search_index is None
        service.add(minimal_entry(title="XENON LAMP", overview="Bright."))
        assert len(index) == 1  # the old index no longer tracks
        assert service.query("xenon").hits  # served fresh regardless

    def test_sync_with_external_index(self, service):
        service.add(minimal_entry())
        index = SearchIndex()
        unsubscribe = index.sync_with(service)
        service.add(minimal_entry(title="XENON LAMP",
                                  overview="Bright."))
        assert len(index) == 2
        unsubscribe()
        service.add(minimal_entry(title="QUARTZ", overview="Clear."))
        assert len(index) == 2  # detached


class TestCurationThroughFacade:
    def test_plain_store_is_wrapped(self):
        backend = MemoryBackend()
        repo = CuratedRepository(backend)
        assert isinstance(repo.store, RepositoryService)
        assert repo.store.backend is backend

    def test_existing_service_is_reused(self):
        service = RepositoryService()
        repo = CuratedRepository(service)
        assert repo.store is service

    def test_curated_writes_reach_attached_search(self):
        service = RepositoryService()
        repo = CuratedRepository(service)
        service.enable_search()
        ann = User("Ann", Role.MEMBER)
        repo.submit(ann, minimal_entry())
        assert repo.query("demo").hits
        rex = User("Rex", Role.REVIEWER)
        repo.approve(rex, "demo-example")
        hits = repo.query("demo").hits
        assert hits[0].entry.version == Version(1, 0)
