"""Tests for citations (E11), search, and the glossary."""

from __future__ import annotations

import pytest

from repro.core.errors import CitationError
from repro.repository.citation import (
    REPOSITORY_URL,
    archive_manuscript,
    cite_archive,
    cite_entry,
    cite_repository,
    entry_url,
)
from repro.repository.glossary import (
    define,
    glossary_terms,
    known_property_names,
)
from repro.repository.search import SearchIndex, tokenize
from repro.repository.store import MemoryStore
from repro.repository.template import EntryType
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry


class TestCiteEntry:
    def test_plain_includes_version_and_url(self):
        entry = minimal_entry()
        citation = cite_entry(entry)
        assert "version 0.1" in citation
        assert entry_url(entry) in citation
        assert "Ann" in citation

    def test_bibtex_shape(self):
        text = cite_entry(minimal_entry(), style="bibtex")
        assert text.startswith("@misc{bx-example-demo-example-0.1,")
        assert "url = {" in text

    def test_version_distinguishes_citations(self):
        old = cite_entry(minimal_entry())
        new = cite_entry(minimal_entry(version=Version(0, 2)))
        assert old != new

    def test_unknown_style(self):
        with pytest.raises(CitationError):
            cite_entry(minimal_entry(), style="chicago")

    def test_no_authors_rejected(self):
        entry = minimal_entry(authors=())
        with pytest.raises(CitationError):
            cite_entry(entry)


class TestRepositoryAndArchive:
    def test_cite_repository_names_the_paper(self):
        citation = cite_repository()
        assert "Towards a Repository of Bx Examples" in citation
        assert REPOSITORY_URL in citation
        assert "87" in citation

    def test_cite_repository_bibtex(self):
        assert "@inproceedings" in cite_repository(style="bibtex")

    def test_archive_manuscript_collects_contributors(self):
        store = MemoryStore()
        store.add(minimal_entry())
        store.add(minimal_entry(title="OTHER", authors=("Zoe",),
                                reviewers=("Rex",)))
        manuscript = archive_manuscript(store)
        assert manuscript["authors"] == ["Ann", "Zoe"]
        assert manuscript["reviewers"] == ["Rex"]
        assert manuscript["entry_count"] == 2

    def test_cite_archive(self):
        store = MemoryStore()
        store.add(minimal_entry())
        assert "1 examples" in cite_archive(store)
        assert "@techreport" in cite_archive(store, style="bibtex")


class TestTokenize:
    def test_lowercases_and_drops_stopwords(self):
        assert tokenize("The Composers of the list") == \
            ["composers", "list"]

    def test_numbers_kept(self):
        assert "2014" in tokenize("BX 2014")


class TestSearchIndex:
    @pytest.fixture
    def index(self) -> SearchIndex:
        store = MemoryStore()
        store.add(minimal_entry(
            title="COMPOSERS", overview="Musical composers and lists.",
            discussion="Undoability is too strong."))
        store.add(minimal_entry(
            title="UML2RDBMS",
            overview="Class diagrams persisted to schemas.",
            types=(EntryType.SKETCH,),
            authors=("Zoe",),
            discussion="The notorious example, in many variants."))
        return SearchIndex().build(store)

    def test_free_text_finds_by_overview(self, index):
        hits = index.search("musical composers")
        assert hits[0].identifier == "composers"

    def test_title_hits_outrank_discussion_hits(self, index):
        hits = index.search("uml2rdbms")
        assert hits and hits[0].identifier == "uml2rdbms"

    def test_no_hits(self, index):
        assert index.search("quantum") == []

    def test_limit(self, index):
        assert len(index.search("example composers schemas", limit=1)) == 1

    def test_by_type(self, index):
        sketches = index.by_type(EntryType.SKETCH)
        assert [e.identifier for e in sketches] == ["uml2rdbms"]

    def test_by_property(self, index):
        assert [e.identifier for e in index.by_property("correct")] == \
            ["composers", "uml2rdbms"]
        assert index.by_property("correct", holds=False) == []

    def test_by_author(self, index):
        assert [e.identifier for e in index.by_author("Zoe")] == \
            ["uml2rdbms"]

    def test_review_status_filters(self, index):
        assert len(index.provisional()) == 2
        assert index.reviewed() == []

    def test_reindexing_replaces(self, index):
        index.add_entry(minimal_entry(
            title="COMPOSERS", overview="Completely different now."))
        hits = index.search("musical")
        assert all(hit.identifier != "composers" for hit in hits)

    def test_remove_entry(self, index):
        index.remove_entry("composers")
        assert len(index) == 1
        assert index.search("composers") == [] or \
            all(h.identifier != "composers"
                for h in index.search("composers"))


class TestGlossary:
    def test_checkable_terms_come_from_registry(self):
        terms = {t.term: t for t in glossary_terms()}
        assert terms["hippocratic"].checkable
        assert "do no harm" in terms["hippocratic"].definition

    def test_plain_terms_present(self):
        terms = {t.term for t in glossary_terms()}
        assert {"bx", "model", "consistency relation",
                "state-based"} <= terms

    def test_known_property_names_for_validation(self):
        names = known_property_names()
        assert "hippocratic" in names
        assert "least change" in names

    def test_define_lookup(self):
        assert define("undoable").checkable
        assert define("least change").term == "least change"
        with pytest.raises(KeyError):
            define("sparkliness")

    def test_display_marks_checkable(self):
        assert "[checkable]" in define("correct").display()
