"""E10: the three-level curation workflow (repro.repository.curation)."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    CurationError,
    PermissionDenied,
    ValidationError,
)
from repro.repository.curation import (
    CuratedRepository,
    CurationPolicy,
    Role,
    User,
)
from repro.repository.store import MemoryStore
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry

VISITOR = User("Drifter", Role.VISITOR)
ANN = User("Ann", Role.MEMBER)          # author of the demo entry
BOB = User("Bob", Role.MEMBER)
REX = User("Rex", Role.REVIEWER)
CURATOR = User("Cleo", Role.CURATOR)


@pytest.fixture
def repo() -> CuratedRepository:
    return CuratedRepository(MemoryStore())


@pytest.fixture
def seeded(repo: CuratedRepository) -> CuratedRepository:
    repo.submit(ANN, minimal_entry())
    return repo


class TestRoles:
    def test_ordering(self):
        assert Role.VISITOR < Role.MEMBER < Role.REVIEWER < Role.CURATOR

    def test_at_least(self):
        assert REX.at_least(Role.MEMBER)
        assert not BOB.at_least(Role.REVIEWER)


class TestSubmission:
    def test_member_can_submit(self, repo):
        entry = repo.submit(ANN, minimal_entry())
        assert repo.get(entry.identifier) == entry
        assert repo.review_status(entry.identifier) == "provisional"

    def test_visitor_cannot_submit(self, repo):
        with pytest.raises(PermissionDenied):
            repo.submit(VISITOR, minimal_entry())

    def test_submitter_must_be_an_author(self, repo):
        with pytest.raises(CurationError, match="authors"):
            repo.submit(BOB, minimal_entry())  # authors=("Ann",)

    def test_submission_must_be_provisional(self, repo):
        reviewed = minimal_entry(version=Version(1, 0),
                                 reviewers=("Rex",))
        with pytest.raises(CurationError, match="0.x"):
            repo.submit(ANN, reviewed)

    def test_submission_must_validate(self, repo):
        with pytest.raises(ValidationError):
            repo.submit(ANN, minimal_entry(overview=""))


class TestCommenting:
    def test_member_comments(self, seeded):
        updated = seeded.comment(BOB, "demo-example", "2014-03-28",
                                 "Define duplicates precisely?")
        assert updated.comments[-1].author == "Bob"

    def test_comment_does_not_bump_version(self, seeded):
        before = seeded.get("demo-example").version
        seeded.comment(BOB, "demo-example", "2014-03-28", "Hm.")
        assert seeded.get("demo-example").version == before
        assert seeded.store.versions("demo-example") == [before]

    def test_visitor_cannot_comment(self, seeded):
        """§5.1: commenting needs a wiki account (the barrier to entry)."""
        with pytest.raises(PermissionDenied):
            seeded.comment(VISITOR, "demo-example", "2014-03-28", "hi")

    def test_comments_persist_across_later_versions(self, seeded):
        seeded.comment(BOB, "demo-example", "2014-03-28", "Keep this.")
        seeded.approve(REX, "demo-example")
        assert seeded.get("demo-example").comments[-1].text == "Keep this."


class TestApproval:
    def test_reviewer_approves_to_one_dot_zero(self, seeded):
        approved = seeded.approve(REX, "demo-example")
        assert approved.version == Version(1, 0)
        assert "Rex" in approved.reviewers
        assert seeded.review_status("demo-example") == "reviewed"

    def test_member_cannot_approve(self, seeded):
        with pytest.raises(PermissionDenied):
            seeded.approve(BOB, "demo-example")

    def test_author_cannot_review_own_entry(self, seeded):
        """Review must come from *other* members of the wiki."""
        ann_reviewer = User("Ann", Role.REVIEWER)
        with pytest.raises(CurationError, match="other members"):
            seeded.approve(ann_reviewer, "demo-example")

    def test_double_approval_rejected(self, seeded):
        seeded.approve(REX, "demo-example")
        with pytest.raises(CurationError, match="already reviewed"):
            seeded.approve(REX, "demo-example")

    def test_provisional_version_preserved_in_history(self, seeded):
        """E11: the 0.1 snapshot stays retrievable after approval."""
        seeded.approve(REX, "demo-example")
        old = seeded.get("demo-example", Version(0, 1))
        assert old.version == Version(0, 1)
        assert old.reviewers == ()


class TestRevision:
    def test_author_revises_minor(self, seeded):
        revised = minimal_entry(overview="A better demo.",
                                version=Version(0, 2))
        result = seeded.revise(ANN, revised)
        assert result.overview == "A better demo."
        assert seeded.store.versions("demo-example") == \
            [Version(0, 1), Version(0, 2)]

    def test_curator_revises_others_entries(self, seeded):
        revised = minimal_entry(version=Version(0, 2))
        seeded.revise(CURATOR, revised)

    def test_unrelated_member_cannot_revise(self, seeded):
        """§5.1: no uncontrolled editing of the example itself."""
        revised = minimal_entry(version=Version(0, 2))
        with pytest.raises(PermissionDenied):
            seeded.revise(BOB, revised)

    def test_version_must_bump_exactly_one_step(self, seeded):
        with pytest.raises(CurationError, match="one step"):
            seeded.revise(ANN, minimal_entry(version=Version(0, 5)))

    def test_same_version_rejected(self, seeded):
        with pytest.raises(CurationError):
            seeded.revise(ANN, minimal_entry(version=Version(0, 1)))

    def test_major_revision_requires_reviewers(self, seeded):
        with pytest.raises(CurationError, match="reviewers"):
            seeded.revise(ANN, minimal_entry(version=Version(1, 0)))

    def test_major_revision_with_reviewers_ok(self, seeded):
        revised = minimal_entry(version=Version(1, 0), reviewers=("Rex",))
        assert seeded.revise(CURATOR, revised).version == Version(1, 0)


class TestPolicyCustomisation:
    def test_stricter_comment_policy(self):
        repo = CuratedRepository(
            MemoryStore(), policy=CurationPolicy(comment=Role.REVIEWER))
        repo.submit(ANN, minimal_entry())
        with pytest.raises(PermissionDenied):
            repo.comment(BOB, "demo-example", "2014-03-28", "hi")
        repo.comment(REX, "demo-example", "2014-03-28", "fine")

    def test_reviewers_of(self, seeded):
        assert seeded.reviewers_of("demo-example") == ()
        seeded.approve(REX, "demo-example")
        assert seeded.reviewers_of("demo-example") == ("Rex",)
