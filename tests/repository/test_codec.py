"""The canonical entry codec: wire format, legacy decode, decode memo.

The codec is the single serialisation seam of the read path (see
``repro/repository/codec.py``): every durable backend writes through
``encode_entry`` and hydrates through ``decode_entry`` + a
change-counter-keyed ``DecodeMemo``.  These tests pin the wire format,
the legacy-payload tolerance the conformance suite relies on, and the
memo's counter-keyed coherence.
"""

from __future__ import annotations

import json

import pytest

from repro.core.errors import StorageError
from repro.repository.backends import FileBackend, SQLiteBackend
from repro.repository.codec import (
    CODEC_VERSION,
    DecodeMemo,
    EncodeMemo,
    LineMemo,
    decode_entry,
    encode_entry,
)
from repro.repository.versioning import Version
from tests.repository.test_entry import minimal_entry


class TestWireFormat:
    def test_roundtrip(self):
        entry = minimal_entry()
        assert decode_entry(encode_entry(entry)) == entry

    def test_compact_and_tagged(self):
        payload = encode_entry(minimal_entry())
        assert "\n" not in payload
        assert ": " not in payload and ", " not in payload  # no padding
        data = json.loads(payload)
        assert data["_codec"] == CODEC_VERSION
        assert data["title"] == "DEMO EXAMPLE"  # entry dict stays flat

    def test_deterministic(self):
        entry = minimal_entry()
        assert encode_entry(entry) == encode_entry(minimal_entry())

    def test_decodes_legacy_untagged_payloads(self):
        """Seed-era files (indented, no tag) hydrate identically."""
        entry = minimal_entry()
        legacy = json.dumps(entry.to_dict(), indent=2, sort_keys=True)
        assert decode_entry(legacy) == entry

    def test_newer_codec_version_fails_loudly(self):
        data = minimal_entry().to_dict()
        data["_codec"] = CODEC_VERSION + 1
        with pytest.raises(StorageError, match="codec version"):
            decode_entry(json.dumps(data))

    def test_non_object_payload_rejected(self):
        with pytest.raises(StorageError, match="not an object"):
            decode_entry("[1, 2, 3]")


class TestDecodeMemo:
    def test_hit_requires_matching_counter(self):
        memo = DecodeMemo()
        entry = minimal_entry()
        memo.put("demo-example", "0.1", 7, entry)
        assert memo.get("demo-example", "0.1", 7) is entry
        assert memo.get("demo-example", "0.1", 8) is None  # a write landed
        assert memo.get("demo-example", "0.2", 7) is None
        assert memo.stats()["hits"] == 1
        assert memo.stats()["misses"] == 2

    def test_lru_bound_evicts_oldest(self):
        memo = DecodeMemo(maxsize=2)
        entry = minimal_entry()
        memo.put("a", "0.1", 1, entry)
        memo.put("b", "0.1", 1, entry)
        memo.get("a", "0.1", 1)  # refresh a
        memo.put("c", "0.1", 1, entry)  # evicts b (least recent)
        assert memo.get("b", "0.1", 1) is None
        assert memo.get("a", "0.1", 1) is entry
        assert memo.stats()["evictions"] == 1
        assert len(memo) == 2

    def test_zero_size_disables_memoisation(self):
        memo = DecodeMemo(maxsize=0)
        memo.put("a", "0.1", 1, minimal_entry())
        assert memo.get("a", "0.1", 1) is None
        assert len(memo) == 0


class TestWireMemos:
    """The wire-speed twins: EncodeMemo (server), LineMemo (client)."""

    def test_encode_memo_hit_requires_matching_token(self):
        memo = EncodeMemo()
        line = encode_entry(minimal_entry())
        memo.put("demo-example", None, "e1.4", line)
        assert memo.get("demo-example", None, "e1.4") == line
        assert memo.get("demo-example", None, "e1.5") is None  # a write
        assert memo.get("demo-example", "0.1", "e1.4") is None
        assert memo.stats()["hits"] == 1
        assert memo.stats()["misses"] == 2

    def test_encode_memo_latest_and_pinned_are_distinct_slots(self):
        memo = EncodeMemo()
        memo.put("a", None, "t", "latest-line")
        memo.put("a", "0.1", "t", "pinned-line")
        assert memo.get("a", None, "t") == "latest-line"
        assert memo.get("a", "0.1", "t") == "pinned-line"

    def test_line_memo_keys_by_exact_bytes(self):
        memo = LineMemo()
        entry = minimal_entry()
        line = encode_entry(entry).encode("utf-8")
        memo.put(line, entry)
        assert memo.get(line) is entry
        # A changed entry arrives as DIFFERENT bytes — never a stale hit.
        assert memo.get(line + b" ") is None

    def test_line_memo_lru_bound(self):
        memo = LineMemo(maxsize=2)
        entry = minimal_entry()
        memo.put(b"a", entry)
        memo.put(b"b", entry)
        memo.get(b"a")
        memo.put(b"c", entry)  # evicts b (least recent)
        assert memo.get(b"b") is None
        assert memo.get(b"a") is entry
        assert memo.stats()["evictions"] == 1


class TestBackendsThroughTheCodec:
    """The codec seam observed from the outside of each backend."""

    def test_file_backend_writes_compact_tagged_snapshots(self, tmp_path):
        backend = FileBackend(tmp_path / "repo")
        backend.add(minimal_entry())
        path = tmp_path / "repo" / "entries" / "demo-example" / "0.1.json"
        data = json.loads(path.read_text())
        assert data["_codec"] == CODEC_VERSION
        assert data["title"] == "DEMO EXAMPLE"

    def test_file_backend_reads_legacy_snapshots(self, tmp_path):
        """A seed-era tree (indented, untagged) still resolves."""
        backend = FileBackend(tmp_path / "repo")
        entry = minimal_entry()
        entry_dir = tmp_path / "repo" / "entries" / "demo-example"
        entry_dir.mkdir(parents=True)
        (entry_dir / "0.1.json").write_text(
            json.dumps(entry.to_dict(), indent=2, sort_keys=True))
        assert backend.get("demo-example") == entry

    def test_sqlite_backend_reads_legacy_rows(self, tmp_path):
        """Rows written by the pre-codec json.dumps decode unchanged."""
        path = tmp_path / "repo.db"
        entry = minimal_entry()
        with SQLiteBackend(path) as backend:
            backend.add(minimal_entry(title="PLACEHOLDER"))
            with backend._lock, backend._conn:
                backend._conn.execute(
                    "INSERT INTO entries (identifier, major, minor, "
                    "payload) VALUES (?, ?, ?, ?)",
                    ("demo-example", 0, 1,
                     json.dumps(entry.to_dict(), sort_keys=True)))
                backend._conn.execute(
                    "INSERT OR REPLACE INTO dirty (identifier) "
                    "VALUES ('demo-example')")
        with SQLiteBackend(path) as reopened:
            assert reopened.get("demo-example") == entry

    @pytest.mark.parametrize("kind", ["file", "sqlite"])
    def test_repeated_get_hydrates_once(self, kind, tmp_path,
                                        monkeypatch):
        """The decode memo: a payload fetched twice is decoded once."""
        if kind == "file":
            FileBackend(tmp_path / "repo").add(minimal_entry())
            backend = FileBackend(tmp_path / "repo")  # fresh memo
        else:
            with SQLiteBackend(tmp_path / "repo.db") as writer:
                writer.add(minimal_entry())
            backend = SQLiteBackend(tmp_path / "repo.db")
        first = backend.get("demo-example")

        from repro.repository import codec as codec_module
        monkeypatch.setattr(
            codec_module, "decode_entry",
            lambda payload: pytest.fail("second fetch re-decoded"))
        monkeypatch.setattr(
            f"repro.repository.backends.{kind}.decode_entry",
            lambda payload: pytest.fail("second fetch re-decoded"))
        assert backend.get("demo-example") is first
        assert backend.get_many(["demo-example"]) == [first]
        backend.close()

    @pytest.mark.parametrize("kind", ["file", "sqlite"])
    def test_writes_prime_the_memo(self, kind, tmp_path, monkeypatch):
        """Bytes the process just produced are never re-parsed."""
        if kind == "file":
            backend = FileBackend(tmp_path / "repo")
        else:
            backend = SQLiteBackend(tmp_path / "repo.db")
        monkeypatch.setattr(
            f"repro.repository.backends.{kind}.decode_entry",
            lambda payload: pytest.fail("own write was re-decoded"))
        entry = minimal_entry()
        backend.add(entry)
        assert backend.get("demo-example") == entry
        revised = minimal_entry(version=Version(0, 2),
                                overview="Better.")
        backend.add_version(revised)
        assert backend.get("demo-example") == revised
        backend.close()

    def test_file_writes_bump_the_counter_past_the_race_window(
            self, tmp_path):
        """Every file write bumps twice — before the rename
        (index-snapshot safety: content never lands under an old
        counter) and after it (cache safety: a reader racing the
        rename can have cached the pre-rename state — old bytes on a
        replace_latest, the entry's absence on an add — under the
        first-bumped counter; the second bump orphans that)."""
        backend = FileBackend(tmp_path / "repo")
        backend.add(minimal_entry())
        before = backend.change_counter()
        backend.add_version(minimal_entry(version=Version(0, 2)))
        assert backend.change_counter() == before + 2
        backend.replace_latest(minimal_entry(version=Version(0, 2),
                                             overview="Rewritten."))
        assert backend.change_counter() == before + 4

    def test_memo_cannot_serve_across_writes(self, tmp_path):
        """replace_latest keeps the version but changes content; the
        counter in the key makes the old snapshot unreachable."""
        backend = FileBackend(tmp_path / "repo")
        backend.add(minimal_entry())
        assert backend.get("demo-example").overview == "A demo."
        backend.replace_latest(minimal_entry(overview="Patched."))
        assert backend.get("demo-example").overview == "Patched."

    def test_foreign_writer_invalidates_via_the_counter(self, tmp_path):
        """Another FileBackend over the same root stays visible."""
        ours = FileBackend(tmp_path / "repo")
        ours.add(minimal_entry())
        assert ours.get("demo-example").overview == "A demo."
        theirs = FileBackend(tmp_path / "repo")
        theirs.replace_latest(minimal_entry(overview="Foreign edit."))
        assert ours.get("demo-example").overview == "Foreign edit."

    def test_cache_stats_shapes(self, tmp_path):
        file_backend = FileBackend(tmp_path / "repo")
        file_backend.add(minimal_entry())
        file_backend.get("demo-example")
        stats = file_backend.cache_stats()
        assert set(stats) == {"decode_memo", "listing"}
        assert stats["decode_memo"]["hits"] >= 1  # write primed it

        with SQLiteBackend(tmp_path / "repo.db") as sqlite_backend:
            sqlite_backend.add(minimal_entry())
            sqlite_backend.get("demo-example")
            assert "decode_memo" in sqlite_backend.cache_stats()

    def test_composite_cache_stats_merge_children(self, tmp_path):
        from repro.repository.backends import (
            ReplicatedBackend,
            ShardedBackend,
        )
        sharded = ShardedBackend.create("sqlite", tmp_path / "shards",
                                        shard_count=2)
        sharded.add(minimal_entry())
        sharded.get("demo-example")
        merged = sharded.cache_stats()
        assert merged["decode_memo"]["hits"] >= 1
        sharded.close()

        replicated = ReplicatedBackend(
            SQLiteBackend(tmp_path / "p.db"),
            FileBackend(tmp_path / "r"))
        replicated.add(minimal_entry())
        replicated.get("demo-example")
        assert "decode_memo" in replicated.cache_stats()
        assert "listing" in replicated.cache_stats()  # the file replica
        replicated.close()
