"""Shared fixtures for the bx-repository test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.laws import CheckConfig
from repro.repository.store import FileStore, MemoryStore


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; tests that need different streams reseed."""
    return random.Random(0xB0)


@pytest.fixture
def quick_config() -> CheckConfig:
    """A fast checking configuration for unit tests."""
    return CheckConfig(trials=80, seed=7, shrink=False)


@pytest.fixture
def thorough_config() -> CheckConfig:
    """A heavier configuration for the flagship property experiments."""
    return CheckConfig(trials=300, seed=7)


@pytest.fixture
def memory_store() -> MemoryStore:
    return MemoryStore()


@pytest.fixture
def file_store(tmp_path) -> FileStore:
    return FileStore(tmp_path / "repo")
