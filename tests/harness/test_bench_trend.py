"""The bench-trend pipeline: raw pytest-benchmark JSON -> trajectory.

CI's ``bench-trend`` job depends on :func:`normalise_benchmark_json`
producing a small, deterministic document and on ``benchmarks/trend.py``
writing it where the artifact upload expects it; both are pinned here.
"""

from __future__ import annotations

import json
import runpy
import sys
from pathlib import Path

import pytest

from repro.harness.reporting import normalise_benchmark_json

RAW = {
    "datetime": "2026-07-28T12:00:00",
    "commit_info": {"id": "abc1234", "branch": "main"},
    "machine_info": {"node": "ci-runner", "python_version": "3.12"},
    "benchmarks": [
        {
            "name": "test_point_get_uncached[sqlite]",
            "group": None,
            "params": {"kind": "sqlite"},
            "stats": {"min": 0.001, "max": 0.9, "mean": 0.002,
                      "stddev": 0.0005, "rounds": 7, "ops": 500.0,
                      "median": 0.0019, "iqr": 0.0001},
        },
        {
            "name": "test_bulk_load[memory]",
            "group": None,
            "params": {"kind": "memory"},
            "stats": {"min": 0.01, "mean": 0.02, "stddev": 0.001,
                      "rounds": 3, "ops": 50.0},
            "extra_info": {"hit_rate": 0.97, "cache_size": 64},
        },
    ],
}


class TestNormalise:
    def test_keeps_only_stable_stats_sorted_by_name(self):
        trend = normalise_benchmark_json(RAW, label="PR7")
        assert trend["schema"] == 1
        assert trend["label"] == "PR7"
        assert trend["commit"] == "abc1234"
        assert trend["branch"] == "main"
        assert trend["machine"] == "ci-runner"
        assert trend["benchmark_count"] == 2
        names = [row["name"] for row in trend["benchmarks"]]
        assert names == sorted(names)
        first = trend["benchmarks"][1]  # point_get sorts second
        assert first["name"] == "test_point_get_uncached[sqlite]"
        assert first["params"] == {"kind": "sqlite"}
        assert first["stats"] == {"min": 0.001, "mean": 0.002,
                                  "stddev": 0.0005, "rounds": 7,
                                  "ops": 500.0}
        assert "max" not in first["stats"]  # noisy stats are dropped

    def test_extra_info_rides_along(self):
        """Benchmark-attached measurements (hit rates from the cache
        sizing sweep) survive normalisation."""
        trend = normalise_benchmark_json(RAW, label="PR7")
        bulk = trend["benchmarks"][0]
        assert bulk["name"] == "test_bulk_load[memory]"
        assert bulk["extra_info"] == {"hit_rate": 0.97, "cache_size": 64}
        point_get = trend["benchmarks"][1]
        assert point_get["extra_info"] == {}  # absent -> empty, not None

    def test_tolerates_missing_sections(self):
        trend = normalise_benchmark_json({}, label="local")
        assert trend["benchmark_count"] == 0
        assert trend["commit"] is None
        assert trend["benchmarks"] == []

    def test_is_deterministic(self):
        one = normalise_benchmark_json(RAW, label="PR7")
        two = normalise_benchmark_json(json.loads(json.dumps(RAW)),
                                       label="PR7")
        assert one == two


class TestTrendCli:
    TREND = Path(__file__).resolve().parents[2] / "benchmarks" / "trend.py"

    def run_cli(self, monkeypatch, tmp_path, *arguments, expect=0):
        raw_path = tmp_path / "raw.json"
        raw_path.write_text(json.dumps(RAW))
        monkeypatch.chdir(tmp_path)
        monkeypatch.setattr(sys, "argv",
                            ["trend.py", str(raw_path), *arguments])
        with pytest.raises(SystemExit) as outcome:
            runpy.run_path(str(self.TREND), run_name="__main__")
        assert outcome.value.code == expect

    def test_default_artifact_lands_at_repo_root(self):
        """The default output is <repo>/BENCH_<label>.json — committable
        next to the code, not wherever the job happened to cd."""
        namespace = runpy.run_path(str(self.TREND))
        out = namespace["default_out"]("PR9")
        assert out == Path(__file__).resolve().parents[2] / \
            "BENCH_PR9.json"

    def test_writes_named_artifact(self, monkeypatch, tmp_path):
        self.run_cli(monkeypatch, tmp_path, "--label", "PR9",
                     "--out", "BENCH_PR9.json")
        written = json.loads((tmp_path / "BENCH_PR9.json").read_text())
        assert written["label"] == "PR9"
        assert written["benchmark_count"] == 2

    def test_honours_explicit_out_path(self, monkeypatch, tmp_path):
        self.run_cli(monkeypatch, tmp_path, "--label", "PR9",
                     "--out", "custom.json")
        assert json.loads((tmp_path / "custom.json").read_text())[
            "label"] == "PR9"


class TestClobberProtection:
    """A committed BENCH_PR<N>.json is history: a label collision must
    fail the run, not silently rewrite a past PR's measurements."""

    TREND = TestTrendCli.TREND

    def git_repo_with_tracked(self, tmp_path, name: str) -> Path:
        import subprocess
        tracked = tmp_path / name
        tracked.write_text("{\"label\": \"old\"}\n")
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        subprocess.run(["git", "add", name], cwd=tmp_path, check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-q", "-m", "seed"], cwd=tmp_path, check=True)
        return tracked

    def test_refuses_committed_collision(self, monkeypatch, tmp_path,
                                         capsys):
        tracked = self.git_repo_with_tracked(tmp_path, "BENCH_PR9.json")
        TestTrendCli().run_cli(
            monkeypatch, tmp_path, "--label", "PR9",
            "--out", str(tracked), expect=1)
        assert json.loads(tracked.read_text()) == {"label": "old"}
        assert "refusing to overwrite" in capsys.readouterr().err

    def test_force_overwrites_committed_point(self, monkeypatch,
                                              tmp_path):
        tracked = self.git_repo_with_tracked(tmp_path, "BENCH_PR9.json")
        TestTrendCli().run_cli(
            monkeypatch, tmp_path, "--label", "PR9",
            "--out", str(tracked), "--force")
        assert json.loads(tracked.read_text())["label"] == "PR9"

    def test_untracked_file_is_scratch_and_replaceable(self, monkeypatch,
                                                       tmp_path):
        """A leftover from a previous local run (exists, not committed)
        is overwritten without ceremony."""
        import subprocess
        subprocess.run(["git", "init", "-q"], cwd=tmp_path, check=True)
        scratch = tmp_path / "BENCH_PR9.json"
        scratch.write_text("{\"label\": \"scratch\"}\n")
        TestTrendCli().run_cli(monkeypatch, tmp_path, "--label", "PR9",
                               "--out", str(scratch))
        assert json.loads(scratch.read_text())["label"] == "PR9"

    def test_is_committed_outside_git(self, tmp_path):
        namespace = runpy.run_path(str(self.TREND))
        loose = tmp_path / "BENCH_X.json"
        loose.write_text("{}")
        assert namespace["is_committed"](loose) is False
