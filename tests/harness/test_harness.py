"""Tests for the workload harness (generators, workloads, metrics,
reporting)."""

from __future__ import annotations

import pytest

from repro.catalogue.composers import composers_bx
from repro.core.laws import CheckConfig, CheckReport, LawResult
from repro.core.properties import CheckStatus
from repro.harness import (
    SyncResult,
    bwd_change_size,
    claims_table,
    composer_pool,
    composers_bwd_workload,
    composers_edit_workload,
    composers_fwd_workload,
    consistent_composer_pair,
    fwd_change_size,
    large_composer_model,
    large_pair_list,
    law_report_table,
    random_pair_edit_script,
    restoration_report,
    run_sync_workload,
    scaled_names,
    text_table,
    time_callable,
)


class TestGenerators:
    def test_scaled_names_distinct(self):
        names = scaled_names(100)
        assert len(set(names)) == 100

    def test_composer_pool_size_and_determinism(self):
        first = composer_pool(50, seed=1)
        second = composer_pool(50, seed=1)
        assert first == second
        assert len({c.name for c in first}) == 50
        assert composer_pool(50, seed=2) != first

    def test_large_models(self):
        model = large_composer_model(200)
        assert len(model) == 200
        listing = large_pair_list(200)
        assert len(listing) == 200

    def test_consistent_pair_really_consistent(self):
        bx = composers_bx()
        left, right = consistent_composer_pair(100, seed=3)
        assert bx.consistent(left, right)
        assert list(right) != sorted(right)  # shuffled, not canonical

    def test_edit_scripts_apply_cleanly(self):
        listing = large_pair_list(50, seed=4)
        script = random_pair_edit_script(listing, edits=30, seed=4)
        edited = script.apply(listing)
        assert isinstance(edited, tuple)
        assert len(script) == 30

    def test_edit_mix_ratios(self):
        listing = large_pair_list(50, seed=5)
        adds_only = random_pair_edit_script(listing, 20, seed=5,
                                            add_ratio=1.0, delete_ratio=0.0)
        edited = adds_only.apply(listing)
        assert len(edited) == 70

    def test_empty_model_edits(self):
        script = random_pair_edit_script((), edits=5, seed=6)
        assert len(script.apply(())) >= 1  # must have inserted


class TestWorkloads:
    def test_fwd_workload_restores_consistency(self):
        bx = composers_bx()
        workload = composers_fwd_workload(size=60, perturbation=10)
        restored = workload.run_once()
        left, _perturbed = workload.setup()
        assert bx.consistent(left, restored)

    def test_bwd_workload_restores_consistency(self):
        bx = composers_bx()
        workload = composers_bwd_workload(size=60, perturbation=10)
        repaired = workload.run_once()
        _left, perturbed = workload.setup()
        assert bx.consistent(repaired, perturbed)

    def test_edit_session_ends_consistent(self):
        workload = composers_edit_workload(size=40, edits=15)
        result = workload.run_once()
        assert isinstance(result, SyncResult)
        assert result.consistent_after

    def test_run_sync_workload_postcondition(self):
        workload = composers_edit_workload(size=20, edits=5)
        run_sync_workload(workload,
                          check=lambda r: r.consistent_after)
        with pytest.raises(AssertionError):
            run_sync_workload(workload, check=lambda r: False)


class TestMetrics:
    def test_time_callable(self):
        seconds, value = time_callable(lambda: sum(range(1000)))
        assert value == 499500
        assert seconds >= 0

    def test_change_sizes(self):
        assert fwd_change_size((1, 2, 3), (1, 3)) == 1
        assert bwd_change_size(frozenset({1, 2}), frozenset({2, 3})) == 2

    def test_restoration_report_rows(self):
        bx = composers_bx()
        left, right = consistent_composer_pair(30, seed=7)
        report = restoration_report(bx, left, right, "fwd")
        assert report.bx_name == "composers"
        assert report.change_size == 0  # already consistent
        assert "ms" in report.row()[3]


class TestReporting:
    def test_text_table_alignment(self):
        table = text_table(("name", "n"), [("composers", 1), ("x", 20)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_law_report_table(self):
        report = CheckReport("demo", [
            LawResult("correct", "demo", CheckStatus.PASSED, trials=5)])
        table = law_report_table([report])
        assert "correct" in table and "passed" in table

    def test_claims_table_verdicts(self):
        report = CheckReport("demo", [
            LawResult("correct", "demo", CheckStatus.PASSED,
                      note="claimed holds, measured holds"),
            LawResult("undoable", "demo", CheckStatus.FAILED),
            LawResult("simply matching", "demo", CheckStatus.SKIPPED)])
        table = claims_table(report)
        assert "agrees" in table
        assert "DISAGREES" in table
        assert "unchecked" in table
