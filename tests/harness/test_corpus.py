"""The corpus factory: deterministic 100k-scale synthetic entries.

The soak harness's reproducibility story rests on the corpus being a
pure function of its spec — same seed, same bytes, in any process — and
on the generated stream actually looking like a repository (valid
against the template, Zipf-skewed over types/properties/authors).
"""

from __future__ import annotations

import json
import subprocess
import sys
from collections import Counter
from pathlib import Path

from repro.harness.workloads import (
    CORPUS_PROPERTY_RANKS,
    CORPUS_TYPE_RANKS,
    CorpusSpec,
    ZipfPool,
    corpus_author_pool,
    corpus_digest,
    corpus_entries,
    corpus_entry,
)
from repro.repository.codec import encode_entry
from repro.repository.template import MUTUALLY_EXCLUSIVE_TYPES
from repro.repository.validation import validate_entry

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestDeterminism:
    def test_same_spec_same_entries(self):
        spec = CorpusSpec(count=200, seed=42)
        first = list(corpus_entries(spec))
        second = list(corpus_entries(spec))
        assert first == second

    def test_entries_are_index_addressable(self):
        """``corpus_entry(spec, i)`` is random-access: it agrees with
        the streamed generator at every position (per-index seeding,
        not sequential RNG state)."""
        spec = CorpusSpec(count=50, seed=9)
        streamed = list(corpus_entries(spec))
        for index, entry in enumerate(streamed):
            assert corpus_entry(spec, index) == entry

    def test_different_seeds_differ(self):
        base = corpus_digest(CorpusSpec(count=100, seed=0))
        other = corpus_digest(CorpusSpec(count=100, seed=1))
        assert base != other

    def test_digest_is_byte_identical_across_processes(self):
        """The reproducibility contract CI leans on: a fresh interpreter
        (different PYTHONHASHSEED, no shared state) derives the exact
        same corpus digest."""
        spec = CorpusSpec(count=300, seed=7)
        local = corpus_digest(spec)
        script = (
            "from repro.harness.workloads import CorpusSpec, corpus_digest\n"
            "print(corpus_digest(CorpusSpec(count=300, seed=7)))\n")
        for hashseed in ("0", "12345"):
            result = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": SRC, "PYTHONHASHSEED": hashseed})
            assert result.stdout.strip() == local

    def test_start_offset_windows_compose(self):
        """Generating [0, 100) equals [0, 50) + [50, 100) — the corpus
        can be produced in chunks (parallel preload) without drift."""
        whole = list(corpus_entries(CorpusSpec(count=100, seed=3)))
        head = list(corpus_entries(CorpusSpec(count=50, seed=3)))
        tail = list(corpus_entries(CorpusSpec(count=50, seed=3, start=50)))
        assert head + tail == whole


class TestCorpusShape:
    def test_identifiers_are_unique(self):
        spec = CorpusSpec(count=2000, seed=5)
        identifiers = [entry.identifier for entry in corpus_entries(spec)]
        assert len(set(identifiers)) == len(identifiers)

    def test_every_entry_validates(self):
        spec = CorpusSpec(count=500, seed=11)
        for entry in corpus_entries(spec):
            report = validate_entry(entry)
            assert report.ok, (entry.identifier, report)

    def test_no_mutually_exclusive_types(self):
        spec = CorpusSpec(count=1000, seed=2)
        for entry in corpus_entries(spec):
            for exclusive in MUTUALLY_EXCLUSIVE_TYPES:
                assert not exclusive <= set(entry.types), entry.identifier

    def test_entries_encode_canonically(self):
        spec = CorpusSpec(count=20, seed=1)
        for entry in corpus_entries(spec):
            assert json.loads(encode_entry(entry))

    def test_zipf_skew_over_types(self):
        """Rank 1 of the type pool dominates: with skew 1.0 over 4
        ranks its share is ~48%, and ranks are monotone-decreasing."""
        spec = CorpusSpec(count=4000, seed=13)
        counts = Counter()
        for entry in corpus_entries(spec):
            counts[entry.types[0]] += 1
        ordered = [counts.get(kind, 0) for kind in CORPUS_TYPE_RANKS]
        assert ordered[0] > ordered[-1] * 2
        share = ordered[0] / spec.count
        assert 0.38 <= share <= 0.58, share

    def test_zipf_skew_over_authors(self):
        spec = CorpusSpec(count=4000, seed=13, authors=64)
        counts = Counter()
        for entry in corpus_entries(spec):
            for author in entry.authors:
                counts[author] += 1
        hottest = corpus_author_pool(64)[0]
        assert counts[hottest] == max(counts.values())
        # The head should clearly outdraw the median author.
        median = sorted(counts.values())[len(counts) // 2]
        assert counts[hottest] > 5 * median

    def test_property_claims_use_glossary_names(self):
        spec = CorpusSpec(count=300, seed=4)
        for entry in corpus_entries(spec):
            for claim in entry.properties:
                assert claim.name in CORPUS_PROPERTY_RANKS


class TestZipfPool:
    def test_rank_one_is_hottest(self):
        import random
        pool = ZipfPool(["a", "b", "c", "d"], skew=1.2)
        rng = random.Random(0)
        counts = Counter(pool.pick(rng) for _ in range(4000))
        assert counts["a"] > counts["b"] > counts["d"]

    def test_sample_is_distinct_and_capped(self):
        import random
        pool = ZipfPool(["a", "b", "c"])
        rng = random.Random(1)
        sample = pool.sample(rng, 10)
        assert sorted(sample) == ["a", "b", "c"]
