"""The soak trend gate: regression maths, bootstrap pass, CLI exits."""

from __future__ import annotations

import io
import json
from pathlib import Path

from repro.harness.soak_gate import compare_reports, gate, main


def report(*, throughput=500.0, violations=(), **recoveries_ms):
    """A minimal soak report dict; fault names are kwargs in ms."""
    return {
        "throughput_ops": throughput,
        "violations": list(violations),
        "faults": [
            {"name": name.replace("_", "-"),
             "recovery_seconds": ms / 1e3}
            for name, ms in recoveries_ms.items()
        ],
    }


class TestCompareReports:
    def test_identical_reports_pass(self):
        current = report(shard_kill=200.0, brownout=600.0)
        assert compare_reports(current, report(
            shard_kill=200.0, brownout=600.0)) == []

    def test_recovery_regression_over_2x_fails(self):
        regressions = compare_reports(
            report(shard_kill=900.0),
            report(shard_kill=200.0))
        assert len(regressions) == 1
        assert "shard-kill" in regressions[0]
        assert "900 ms" in regressions[0]

    def test_recovery_within_2x_passes(self):
        assert compare_reports(
            report(shard_kill=390.0),
            report(shard_kill=200.0)) == []

    def test_noise_floor_ignores_fast_recoveries(self):
        # 4 ms -> 9 ms is > 2x but both are scheduler jitter.
        assert compare_reports(
            report(replica_diverge=9.0),
            report(replica_diverge=4.0)) == []

    def test_noise_floor_anchors_tiny_baselines(self):
        # Baseline under the floor: the threshold is floor * ratio,
        # not baseline * ratio — 40 ms -> 95 ms stays green.
        assert compare_reports(
            report(file_crash=95.0),
            report(file_crash=40.0)) == []
        assert compare_reports(
            report(file_crash=150.0),
            report(file_crash=40.0)) != []

    def test_new_and_removed_faults_are_not_compared(self):
        assert compare_reports(
            report(brand_new=5000.0),
            report(old_gone=1.0)) == []

    def test_throughput_collapse_fails(self):
        regressions = compare_reports(
            report(throughput=100.0, shard_kill=200.0),
            report(throughput=500.0, shard_kill=200.0))
        assert len(regressions) == 1
        assert "throughput" in regressions[0]

    def test_throughput_at_half_passes(self):
        assert compare_reports(
            report(throughput=250.0),
            report(throughput=500.0)) == []


class TestGate:
    def write(self, tmp_path: Path, name: str, payload: dict) -> Path:
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_bootstrap_passes_without_baseline(self, tmp_path):
        current = self.write(tmp_path, "soak.json", report(shard_kill=200.0))
        out = io.StringIO()
        assert gate(current, None, out=out) == 0
        assert "bootstrap" in out.getvalue()

    def test_missing_baseline_file_passes(self, tmp_path):
        current = self.write(tmp_path, "soak.json", report(shard_kill=200.0))
        assert gate(current, tmp_path / "absent.json",
                    out=io.StringIO()) == 0

    def test_red_report_fails_even_without_baseline(self, tmp_path):
        current = self.write(
            tmp_path, "soak.json",
            report(shard_kill=200.0, violations=["stale read"]))
        out = io.StringIO()
        assert gate(current, None, out=out) == 1
        assert "red" in out.getvalue()

    def test_regression_fails_and_names_the_fault(self, tmp_path):
        current = self.write(tmp_path, "now.json", report(brownout=2000.0))
        baseline = self.write(tmp_path, "was.json", report(brownout=600.0))
        out = io.StringIO()
        assert gate(current, baseline, out=out) == 1
        assert "brownout" in out.getvalue()

    def test_clean_trend_passes_and_reports_comparison(self, tmp_path):
        current = self.write(tmp_path, "now.json",
                             report(brownout=650.0, shard_kill=210.0))
        baseline = self.write(tmp_path, "was.json",
                              report(brownout=600.0, shard_kill=200.0))
        out = io.StringIO()
        assert gate(current, baseline, out=out) == 0
        assert "trend OK" in out.getvalue()
        assert "2 fault(s) compared" in out.getvalue()


class TestCli:
    def test_main_exit_codes(self, tmp_path, capsys):
        current = tmp_path / "soak.json"
        current.write_text(json.dumps(report(shard_kill=200.0)))
        baseline = tmp_path / "previous.json"
        baseline.write_text(json.dumps(report(shard_kill=50.0)))
        assert main([str(current)]) == 0
        assert main([str(current), "--baseline", str(baseline)]) == 1
        assert main([str(current), "--baseline", str(baseline),
                     "--max-recovery-ratio", "10"]) == 0
        assert "REGRESSED" in capsys.readouterr().out
