"""E7/E8: the Composers restoration functions, scenario by scenario.

Each test transcribes a clause of the paper's §4 Consistency Restoration
specification into a concrete scenario.
"""

from __future__ import annotations

import pytest

from repro.catalogue.composers import (
    UNKNOWN_DATES,
    composers_bx,
    make_composer,
)

BRITTEN = make_composer("Britten", "1913-1976", "English")
ELGAR = make_composer("Elgar", "1857-1934", "English")
TIPPETT = make_composer("Tippett", "1905-1998", "English")
BYRD_SCOT = make_composer("Byrd", "1543-1623", "Scottish")


@pytest.fixture
def bx():
    return composers_bx()


class TestConsistency:
    def test_same_pairs_consistent(self, bx):
        model = frozenset({BRITTEN, ELGAR})
        listing = (("Elgar", "English"), ("Britten", "English"))
        assert bx.consistent(model, listing)

    def test_order_irrelevant(self, bx):
        model = frozenset({BRITTEN, ELGAR})
        assert bx.consistent(model, (("Britten", "English"),
                                     ("Elgar", "English")))

    def test_duplicates_in_list_allowed(self, bx):
        """'there may be many such' — multiplicity does not matter."""
        model = frozenset({BRITTEN})
        assert bx.consistent(model, (("Britten", "English"),
                                     ("Britten", "English")))

    def test_multiple_composers_one_entry(self, bx):
        """Two composers sharing (name, nationality) need only one entry."""
        other_britten = make_composer("Britten", "1900-1950", "English")
        model = frozenset({BRITTEN, other_britten})
        assert bx.consistent(model, (("Britten", "English"),))

    def test_missing_entry_inconsistent(self, bx):
        assert not bx.consistent(frozenset({BRITTEN, ELGAR}),
                                 (("Britten", "English"),))

    def test_extra_entry_inconsistent(self, bx):
        assert not bx.consistent(frozenset({BRITTEN}),
                                 (("Britten", "English"),
                                  ("Elgar", "English")))

    def test_empty_models_consistent(self, bx):
        assert bx.consistent(frozenset(), ())


class TestForwardRestoration:
    def test_deletes_unmatched_entries(self, bx):
        """Clause 1: delete entries with no matching composer."""
        model = frozenset({BRITTEN})
        listing = (("Elgar", "English"), ("Britten", "English"))
        assert bx.fwd(model, listing) == (("Britten", "English"),)

    def test_preserves_order_of_survivors(self, bx):
        model = frozenset({BRITTEN, ELGAR, TIPPETT})
        listing = (("Tippett", "English"), ("Britten", "English"),
                   ("Elgar", "English"))
        assert bx.fwd(model, listing) == listing

    def test_appends_missing_at_end(self, bx):
        """Clause 2: additions go at the end of n."""
        model = frozenset({BRITTEN, ELGAR})
        listing = (("Britten", "English"),)
        assert bx.fwd(model, listing) == (("Britten", "English"),
                                          ("Elgar", "English"))

    def test_appended_block_alphabetical_by_name_then_nationality(self, bx):
        """'in alphabetical order by name, and within name, by
        nationality'."""
        welsh_byrd = make_composer("Byrd", "1543-1623", "Welsh")
        model = frozenset({TIPPETT, BYRD_SCOT, welsh_byrd, ELGAR})
        result = bx.fwd(model, ())
        assert result == (("Byrd", "Scottish"), ("Byrd", "Welsh"),
                          ("Elgar", "English"), ("Tippett", "English"))

    def test_no_duplicates_added_for_shared_pairs(self, bx):
        """'no duplicates should be added (even if there are several
        composers in m with the same name and nationality)'."""
        twin = make_composer("Britten", "1900-1950", "English")
        model = frozenset({BRITTEN, twin})
        assert bx.fwd(model, ()) == (("Britten", "English"),)

    def test_existing_duplicates_survive(self, bx):
        """Only *additions* are deduplicated; matched entries are kept
        as they are, duplicates included."""
        model = frozenset({BRITTEN})
        listing = (("Britten", "English"), ("Britten", "English"))
        assert bx.fwd(model, listing) == listing

    def test_inputs_not_mutated(self, bx):
        model = frozenset({BRITTEN})
        listing = (("Elgar", "English"),)
        bx.fwd(model, listing)
        assert listing == (("Elgar", "English"),)
        assert model == frozenset({BRITTEN})


class TestBackwardRestoration:
    def test_deletes_unmatched_composers(self, bx):
        model = frozenset({BRITTEN, ELGAR})
        listing = (("Britten", "English"),)
        assert bx.bwd(model, listing) == frozenset({BRITTEN})

    def test_adds_composer_with_unknown_dates(self, bx):
        """'The dates of any newly added composer should be ????-????.'"""
        result = bx.bwd(frozenset(), (("Purcell", "English"),))
        (added,) = result
        assert added.name == "Purcell"
        assert added.nationality == "English"
        assert added.dates == UNKNOWN_DATES

    def test_keeps_matched_composers_with_their_dates(self, bx):
        model = frozenset({BRITTEN})
        result = bx.bwd(model, (("Britten", "English"),
                                ("Elgar", "English")))
        assert BRITTEN in result
        assert len(result) == 2

    def test_duplicate_entries_create_one_composer(self, bx):
        result = bx.bwd(frozenset(), (("Byrd", "Welsh"),
                                      ("Byrd", "Welsh")))
        assert len(result) == 1

    def test_keeps_all_composers_sharing_a_pair(self, bx):
        """Deletion only removes composers with *no* matching entry."""
        twin = make_composer("Britten", "1900-1950", "English")
        model = frozenset({BRITTEN, twin})
        assert bx.bwd(model, (("Britten", "English"),)) == model


class TestDefaultsAndCreation:
    def test_defaults_are_empty_models(self, bx):
        assert bx.default_left() == frozenset()
        assert bx.default_right() == ()

    def test_create_right_from_model(self, bx):
        assert bx.create_right(frozenset({BRITTEN})) == \
            (("Britten", "English"),)

    def test_create_left_from_listing(self, bx):
        created = bx.create_left((("Britten", "English"),))
        (composer,) = created
        assert composer.dates == UNKNOWN_DATES
