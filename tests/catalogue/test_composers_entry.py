"""E2: the COMPOSERS entry reproduces the paper's §4 instance."""

from __future__ import annotations

import pytest

from repro.catalogue.composers import composers_entry
from repro.repository.export import render_wikidot
from repro.repository.template import EntryType
from repro.repository.validation import validate_entry
from repro.repository.versioning import Version
from repro.repository.wiki_sync import WikiSyncLens, normalise_entry


@pytest.fixture(scope="module")
def entry():
    return composers_entry()


class TestHeaderFields:
    def test_title(self, entry):
        assert entry.title == "COMPOSERS"
        assert entry.identifier == "composers"

    def test_version_zero_one(self, entry):
        assert entry.version == Version(0, 1)
        assert not entry.version.is_reviewed

    def test_type_precise(self, entry):
        assert entry.types == (EntryType.PRECISE,)

    def test_overview_matches_paper(self, entry):
        assert entry.overview.startswith(
            "This example stands for many cases")
        assert "choice of ways to restore consistency" in entry.overview


class TestBodyFields:
    def test_two_models_named_m_and_n(self, entry):
        assert [m.name for m in entry.models] == ["M", "N"]
        assert "objects of class Composer" in entry.models[0].description
        assert "ordered list of pairs" in entry.models[1].description

    def test_consistency_clauses(self, entry):
        assert "same set of (name, nationality) pairs" in entry.consistency
        assert "(i)" in entry.consistency and "(ii)" in entry.consistency

    def test_forward_restoration_clauses(self, entry):
        forward = entry.restoration.forward
        assert "deleting from n any entry" in forward
        assert "alphabetical order by name" in forward
        assert "no duplicates should be added" in forward

    def test_backward_restoration_clauses(self, entry):
        backward = entry.restoration.backward
        assert "deleting from m any composer" in backward
        assert "????-????" in backward

    def test_properties_as_in_paper(self, entry):
        rendered = [claim.display() for claim in entry.properties]
        assert rendered == ["Correct", "Hippocratic", "Not undoable",
                            "Simply matching"]

    def test_three_variant_questions(self, entry):
        assert len(entry.variants) == 3
        texts = " ".join(v.description for v in entry.variants)
        assert "Britten, British" in texts
        assert "at the beginning; at the end" in texts
        assert "What dates are used" in texts

    def test_discussion_is_the_undoability_argument(self, entry):
        assert "undoability is too strong" in entry.discussion
        assert "cannot return to exactly its original state" in \
            entry.discussion


class TestBackMatter:
    def test_references_stevens_and_boomerang(self, entry):
        dois = {reference.doi for reference in entry.references}
        assert "10.1007/978-3-540-75209-7_1" in dois
        assert "10.1145/1328438.1328487" in dois

    def test_authors_as_in_paper(self, entry):
        assert entry.authors == ("Perdita Stevens", "James McKinna",
                                 "James Cheney")

    def test_reviewers_and_comments_none_yet(self, entry):
        assert entry.reviewers == ()
        assert entry.comments == ()

    def test_artefacts_point_at_executables(self, entry):
        locators = [artefact.locator for artefact in entry.artefacts]
        assert any("composers.bx" in loc for loc in locators)
        assert any("RememberingComposersLens" in loc for loc in locators)


class TestEntryQuality:
    def test_validates_cleanly(self, entry):
        report = validate_entry(entry)
        assert report.ok, report.describe()
        assert report.warnings == []

    def test_renders_with_none_yet_sections(self, entry):
        page = render_wikidot(entry)
        assert "+ COMPOSERS" in page
        assert "||~ Version || 0.1 ||" in page
        assert "* Not undoable" in page
        assert page.count("None yet") == 2  # Reviewers, Comments

    def test_round_trips_through_the_wiki(self, entry):
        lens = WikiSyncLens()
        normalised = normalise_entry(entry)
        assert lens.put(lens.get(normalised), normalised) == normalised
