"""E3–E6: the §4 property claims, verified and refuted mechanically.

The paper claims Composers is Correct, Hippocratic, **not** Undoable,
and Simply matching.  E5's undoability counterexample is additionally
reproduced *deterministically*, following the Discussion section's
delete/re-add narrative word for word.
"""

from __future__ import annotations

import pytest

from repro.catalogue.composers import (
    RememberingComposersLens,
    UNKNOWN_DATES,
    composers_bx,
    composers_entry,
    make_composer,
)
from repro.core.laws import CheckConfig, verify_property_claims
from repro.core.properties import (
    Correct,
    Hippocratic,
    SimplyMatching,
    Undoable,
)

CONFIG = CheckConfig(trials=300, seed=7)


@pytest.fixture(scope="module")
def bx():
    return composers_bx()


class TestE3Correct:
    def test_randomised(self, bx):
        result = Correct().check(bx.checked(), trials=CONFIG.trials,
                                 seed=CONFIG.seed)
        assert result.passed, result.describe()


class TestE4Hippocratic:
    def test_randomised(self, bx):
        result = Hippocratic().check(bx.checked(), trials=CONFIG.trials,
                                     seed=CONFIG.seed)
        assert result.passed, result.describe()

    def test_consistent_pair_untouched_even_when_unsorted(self, bx):
        model = frozenset({make_composer("Tippett", "1905-1998", "English"),
                           make_composer("Byrd", "1543-1623", "Scottish")})
        user_order = (("Tippett", "English"), ("Byrd", "Scottish"))
        assert bx.fwd(model, user_order) == user_order
        assert bx.bwd(model, user_order) == model


class TestE5NotUndoable:
    def test_randomised_search_finds_counterexample(self, bx):
        result = Undoable().check(bx.checked(), trials=CONFIG.trials,
                                  seed=CONFIG.seed)
        assert result.failed, "undoability unexpectedly held"
        assert result.counterexample is not None

    def test_discussion_scenario_verbatim(self, bx):
        """'Consider a composer currently present (just once) in both of
        a consistent pair of models.  If we delete it from n, and enforce
        consistency on m, the representation of the composer in m,
        including this composer's dates, is lost.  If we now restore it
        to n and re-enforce consistency on m ... the dates cannot be
        restored, so m cannot return to exactly its original state.'"""
        britten = make_composer("Britten", "1913-1976", "English")
        model = frozenset({britten})
        listing = (("Britten", "English"),)
        assert bx.consistent(model, listing)

        # Delete it from n and enforce consistency on m.
        deleted = ()
        shrunk = bx.bwd(model, deleted)
        assert shrunk == frozenset()

        # Restore it to n and re-enforce consistency on m.
        restored_listing = listing
        regrown = bx.bwd(shrunk, restored_listing)

        # The pair is back, but the dates are not.
        (reborn,) = regrown
        assert reborn.name == "Britten"
        assert reborn.dates == UNKNOWN_DATES
        assert regrown != model, "dates were impossibly restored"

    def test_remembering_lens_undoes_the_same_scenario(self):
        """The Discussion's caveat — 'the absence of any extra
        information besides the models' — vanishes with a complement."""
        lens = RememberingComposersLens()
        britten = make_composer("Britten", "1913-1976", "English")
        model = frozenset({britten})
        listing, complement = lens.putr(model, lens.missing())
        assert listing == (("Britten", "English"),)

        # Delete from n; m loses the composer.
        shrunk, complement = lens.putl((), complement)
        assert shrunk == frozenset()

        # Re-add to n: the complement restores the original dates.
        regrown, _complement = lens.putl(listing, complement)
        assert regrown == model


class TestE6SimplyMatching:
    def test_randomised(self, bx):
        result = SimplyMatching().check(bx.checked(),
                                        trials=CONFIG.trials,
                                        seed=CONFIG.seed)
        assert result.passed, result.describe()


class TestClaimsAgainstEntry:
    def test_entry_claims_exactly_the_paper_properties(self):
        claims = composers_entry().claimed_properties()
        assert claims == {"correct": True, "hippocratic": True,
                          "undoable": False, "simply matching": True}

    def test_all_claims_verified_mechanically(self, bx):
        """The mechanised reviewer: every §4 claim agrees with
        measurement, including the negative one."""
        report = verify_property_claims(
            bx, composers_entry().claimed_properties(), config=CONFIG)
        assert report.all_passed, report.summary()
