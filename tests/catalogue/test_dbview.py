"""Scenario and law tests for the relational view-update lenses."""

from __future__ import annotations

import pytest

from repro.catalogue.dbview import JoinLens, ProjectionLens, SelectionLens
from repro.core.errors import TransformationError
from repro.core.laws import CheckConfig, check_lens_laws
from repro.models.relational import Attribute, Relation, RelationSchema
from repro.models.space import FiniteSpace, IntRangeSpace

CONFIG = CheckConfig(trials=150, seed=23, shrink=False)

IDS = IntRangeSpace(1, 9, name="ids")
NAMES = FiniteSpace(["ann", "bob", "cyd"], name="names")
CITIES = FiniteSpace(["rome", "banff"], name="cities")

EMP = RelationSchema("Emp", [
    Attribute("id", IDS), Attribute("name", NAMES),
    Attribute("city", CITIES)], key=["id"])


def emp_rows(*rows) -> Relation:
    return Relation(EMP, set(rows))


class TestProjectionLens:
    def make(self) -> ProjectionLens:
        return ProjectionLens(EMP, ["id", "name"], defaults={"city": "rome"})

    def test_get_projects(self):
        view = self.make().get(emp_rows((1, "ann", "rome")))
        assert view.rows == {(1, "ann")}

    def test_put_restores_hidden_columns_by_key(self):
        lens = self.make()
        source = emp_rows((1, "ann", "banff"))
        view = lens.get(source).with_rows({(1, "cyd")})  # rename ann
        merged = lens.put(view, source)
        assert merged.rows == {(1, "cyd", "banff")}  # city survived

    def test_put_defaults_for_new_keys(self):
        lens = self.make()
        merged = lens.put(lens.get(emp_rows()).with_rows({(7, "cyd")}),
                          emp_rows())
        assert merged.rows == {(7, "cyd", "rome")}

    def test_put_deletes_removed_keys(self):
        lens = self.make()
        source = emp_rows((1, "ann", "rome"), (2, "bob", "banff"))
        view = lens.get(source).with_rows({(1, "ann")})
        assert lens.put(view, source).rows == {(1, "ann", "rome")}

    def test_view_must_keep_key(self):
        with pytest.raises(TransformationError, match="key"):
            ProjectionLens(EMP, ["name"], defaults={"id": 0, "city": "rome"})

    def test_hidden_columns_need_defaults(self):
        with pytest.raises(TransformationError, match="default"):
            ProjectionLens(EMP, ["id", "name"], defaults={})

    def test_laws(self):
        report = check_lens_laws(
            self.make(), laws=["GetPut", "PutGet", "CreateGet"],
            config=CONFIG)
        assert report.all_passed, report.summary()


class TestSelectionLens:
    def make(self) -> SelectionLens:
        return SelectionLens(EMP, lambda row: row["city"] == "rome")

    def test_get_selects(self):
        view = self.make().get(emp_rows((1, "ann", "rome"),
                                        (2, "bob", "banff")))
        assert view.rows == {(1, "ann", "rome")}

    def test_put_preserves_hidden_rows(self):
        lens = self.make()
        source = emp_rows((1, "ann", "rome"), (2, "bob", "banff"))
        view = lens.get(source).with_rows({(3, "cyd", "rome")})
        merged = lens.put(view, source)
        assert merged.rows == {(3, "cyd", "rome"), (2, "bob", "banff")}

    def test_put_rejects_rows_failing_predicate(self):
        """The classic view-update anomaly is an error, not a silent
        law break."""
        lens = self.make()
        bad_view = lens.get(emp_rows()).with_rows({(1, "ann", "banff")})
        with pytest.raises(TransformationError, match="predicate"):
            lens.put(bad_view, emp_rows())

    def test_view_row_supersedes_hidden_row_with_same_key(self):
        lens = self.make()
        source = emp_rows((1, "ann", "banff"))  # hidden
        view = lens.get(source).with_rows({(1, "ann", "rome")})
        assert lens.put(view, source).rows == {(1, "ann", "rome")}

    def test_laws(self):
        report = check_lens_laws(
            self.make(), laws=["GetPut", "PutGet", "CreateGet"],
            config=CONFIG)
        assert report.all_passed, report.summary()


class TestJoinLens:
    PEOPLE = RelationSchema("People", [
        Attribute("id", IDS), Attribute("name", NAMES)], key=["id"])
    DEPT = RelationSchema("Dept", [
        Attribute("id", IDS), Attribute("city", CITIES)], key=["id"])

    def make(self) -> JoinLens:
        return JoinLens(self.PEOPLE, self.DEPT)

    def source(self) -> tuple[Relation, Relation]:
        people = Relation(self.PEOPLE, {(1, "ann"), (2, "bob"), (3, "cyd")})
        dept = Relation(self.DEPT, {(1, "rome"), (2, "banff"), (9, "rome")})
        return (people, dept)

    def test_get_joins(self):
        view = self.make().get(self.source())
        assert view.rows == {(1, "ann", "rome"), (2, "bob", "banff")}

    def test_put_splits_view_rows(self):
        lens = self.make()
        view = lens.get(self.source()).with_rows(
            {(1, "cyd", "rome"), (2, "bob", "banff")})
        people, dept = lens.put(view, self.source())
        assert (1, "cyd") in people.rows
        assert (1, "rome") in dept.rows

    def test_dangling_rows_preserved(self):
        """cyd (no dept) and dept 9 (no person) were never visible;
        hippocraticness demands they survive an unrelated view edit."""
        lens = self.make()
        view = lens.get(self.source())
        people, dept = lens.put(view, self.source())
        assert (3, "cyd") in people.rows
        assert (9, "rome") in dept.rows

    def test_view_claims_dangling_key(self):
        """A view row for a previously dangling key supersedes it."""
        lens = self.make()
        view = lens.get(self.source()).with_rows({(3, "cyd", "rome")})
        people, dept = lens.put(view, self.source())
        assert (3, "cyd") in people.rows
        assert (3, "rome") in dept.rows
        # joined rows whose keys the view dropped are deleted:
        assert (1, "ann") not in people.rows

    def test_requires_shared_key_column(self):
        other = RelationSchema("Other", [Attribute("x", IDS)], key=["x"])
        with pytest.raises(TransformationError, match="shared column"):
            JoinLens(self.PEOPLE, other)

    def test_requires_key_on_shared_column(self):
        unkeyed = RelationSchema("U", [Attribute("id", IDS),
                                       Attribute("city", CITIES)])
        with pytest.raises(TransformationError, match="keyed"):
            JoinLens(self.PEOPLE, unkeyed)

    def test_laws(self):
        report = check_lens_laws(
            self.make(), laws=["GetPut", "PutGet", "CreateGet"],
            config=CONFIG)
        assert report.all_passed, report.summary()
