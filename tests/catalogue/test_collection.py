"""Tests for the built-in catalogue and store population."""

from __future__ import annotations

import pytest

from repro.catalogue import (
    builtin_catalogue,
    catalogue_example,
    populate_store,
)
from repro.core.laws import CheckConfig
from repro.repository.store import MemoryStore
from repro.repository.template import EntryType
from repro.repository.validation import validate_entry


class TestBuiltinCatalogue:
    def test_flagship_first(self):
        assert builtin_catalogue()[0].name == "composers"

    def test_expected_examples_present(self):
        names = {example.name for example in builtin_catalogue()}
        assert {"composers", "composers-string", "uml2rdbms", "dbview",
                "roman-numerals", "dirtree", "model-code-sync",
                "composers-bench"} <= names

    def test_every_entry_validates(self):
        for example in builtin_catalogue():
            report = validate_entry(example.entry())
            assert report.ok, report.describe()

    def test_entries_are_fresh_copies(self):
        example = catalogue_example("composers")
        assert example.entry() is not example.entry()
        assert example.entry() == example.entry()

    def test_broad_church_of_types(self):
        """§2: precise, sketch and benchmark classes all represented."""
        types = {t for ex in builtin_catalogue() for t in ex.entry().types}
        assert {EntryType.PRECISE, EntryType.SKETCH,
                EntryType.BENCHMARK} <= types

    def test_lookup_unknown(self):
        with pytest.raises(KeyError, match="composers"):
            catalogue_example("nonexistent")

    def test_sketches_have_no_bx(self):
        sketch = catalogue_example("model-code-sync")
        assert not sketch.has_bx()
        with pytest.raises(ValueError):
            sketch.bx()

    def test_extra_artefacts_instantiate(self):
        composers = catalogue_example("composers")
        assert composers.artefact("key-on-name").name == \
            "composers/key=name"
        with pytest.raises(KeyError):
            composers.artefact("nonexistent")


class TestClaimVerification:
    @pytest.mark.parametrize(
        "name", [ex.name for ex in builtin_catalogue() if ex.has_bx()])
    def test_every_executable_entry_verifies_its_claims(self, name):
        example = catalogue_example(name)
        report = example.verify_claims(CheckConfig(trials=150, seed=31))
        assert report.all_passed, report.summary()


class TestPopulateStore:
    def test_populates_all(self):
        store = MemoryStore()
        added = populate_store(store)
        assert added == len(builtin_catalogue())
        assert "composers" in store.identifiers()

    def test_idempotent(self):
        store = MemoryStore()
        populate_store(store)
        assert populate_store(store) == 0
        assert store.entry_count() == len(builtin_catalogue())
