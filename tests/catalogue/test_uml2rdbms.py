"""Scenario and property tests for the UML2RDBMS example."""

from __future__ import annotations

import pytest

from repro.catalogue.uml2rdbms import (
    Table,
    add_class,
    empty_diagram,
    tables_of_diagram,
    uml2rdbms_bx,
    uml2rdbms_entry,
    uml2rdbms_lens,
    uml_metamodel,
)
from repro.core.laws import (
    CheckConfig,
    check_bx_properties,
    check_lens_laws,
    verify_property_claims,
)

CONFIG = CheckConfig(trials=200, seed=17)


def shop_diagram():
    """Two persistent classes and one transient helper class."""
    diagram = empty_diagram()
    diagram = add_class(diagram, "Customer", True,
                        [("id", "Integer", True), ("name", "String", False)])
    diagram = add_class(diagram, "Order", True,
                        [("id", "Integer", True), ("paid", "Boolean", False)])
    diagram = add_class(diagram, "Product", False,
                        [("name", "String", False)])
    return diagram


CUSTOMER_TABLE = Table("Customer",
                       (("id", "INT"), ("name", "VARCHAR")), ("id",))
ORDER_TABLE = Table("Order", (("id", "INT"), ("paid", "BOOLEAN")), ("id",))


class TestForward:
    def test_tables_for_persistent_classes_only(self):
        schema = tables_of_diagram(shop_diagram())
        assert schema == frozenset({CUSTOMER_TABLE, ORDER_TABLE})

    def test_columns_name_sorted_and_type_mapped(self):
        (table,) = tables_of_diagram(
            add_class(empty_diagram(), "Customer", True,
                      [("name", "String", False), ("id", "Integer", True)]))
        assert table.columns == (("id", "INT"), ("name", "VARCHAR"))
        assert table.key == ("id",)

    def test_fwd_ignores_stale_schema(self):
        bx = uml2rdbms_bx()
        stale = frozenset({Table("Ghost", (("id", "INT"),), ())})
        assert bx.fwd(shop_diagram(), stale) == \
            frozenset({CUSTOMER_TABLE, ORDER_TABLE})


class TestBackward:
    def test_dropped_table_deletes_class_and_attributes(self):
        bx = uml2rdbms_bx()
        repaired = bx.bwd(shop_diagram(), frozenset({CUSTOMER_TABLE}))
        names = {node.attribute("name")
                 for node in repaired.nodes("Class")}
        assert "Order" not in names
        assert not [n for n in repaired.nodes("Attribute")
                    if n.node_id.startswith("attr:Order")]

    def test_non_persistent_classes_untouched(self):
        """Product is invisible in the schema; bwd must not touch it."""
        bx = uml2rdbms_bx()
        repaired = bx.bwd(shop_diagram(), frozenset())
        names = {node.attribute("name")
                 for node in repaired.nodes("Class")}
        assert names == {"Product"}

    def test_new_table_creates_flat_persistent_class(self):
        bx = uml2rdbms_bx()
        table = Table("Invoice", (("total", "INT"),), ())
        repaired = bx.bwd(empty_diagram(), frozenset({table}))
        (cls,) = repaired.nodes("Class")
        assert cls.attribute("name") == "Invoice"
        assert cls.attribute("persistent") is True
        (attr,) = repaired.targets(cls.node_id, "attrs")
        assert attr.attribute("type") == "Integer"

    def test_changed_table_repairs_class_in_place(self):
        bx = uml2rdbms_bx()
        changed = Table("Customer",
                        (("id", "INT"), ("name", "VARCHAR"),
                         ("total", "INT")), ("id",))
        repaired = bx.bwd(shop_diagram(), frozenset({changed, ORDER_TABLE}))
        assert tables_of_diagram(repaired) == \
            frozenset({changed, ORDER_TABLE})

    def test_table_matching_transient_class_persists_it(self):
        bx = uml2rdbms_bx()
        table = Table("Product", (("name", "VARCHAR"),), ())
        repaired = bx.bwd(shop_diagram(),
                          frozenset({CUSTOMER_TABLE, ORDER_TABLE, table}))
        product = next(node for node in repaired.nodes("Class")
                       if node.attribute("name") == "Product")
        assert product.attribute("persistent") is True
        assert bx.consistent(repaired,
                             frozenset({CUSTOMER_TABLE, ORDER_TABLE,
                                        table}))


class TestInheritanceVariant:
    def family_diagram(self):
        diagram = empty_diagram()
        diagram = add_class(diagram, "Customer", False,
                            [("id", "Integer", True)])
        diagram = add_class(diagram, "Order", True,
                            [("paid", "Boolean", False)],
                            parent="Customer")
        return diagram

    def test_flattening_includes_inherited_attributes(self):
        schema = tables_of_diagram(self.family_diagram(),
                                   flatten_inheritance=True)
        (table,) = schema
        assert table.columns == (("id", "INT"), ("paid", "BOOLEAN"))
        assert table.key == ("id",)

    def test_without_flattening_only_own_attributes(self):
        schema = tables_of_diagram(self.family_diagram())
        (table,) = schema
        assert table.columns == (("paid", "BOOLEAN"),)

    def test_repair_flattens_hierarchy(self):
        """Column provenance is unrecorded, so repair drops the parent
        edge — the inheritance analogue of Composers losing dates."""
        bx = uml2rdbms_bx(with_inheritance=True)
        diagram = self.family_diagram()
        changed = Table("Order",
                        (("id", "INT"), ("paid", "BOOLEAN"),
                         ("total", "INT")), ("id",))
        repaired = bx.bwd(diagram, frozenset({changed}))
        order = next(node for node in repaired.nodes("Class")
                     if node.attribute("name") == "Order")
        assert repaired.targets(order.node_id, "parent") == []
        assert bx.consistent(repaired, frozenset({changed}))


class TestProperties:
    @pytest.mark.parametrize("with_inheritance", [False, True])
    def test_correct_and_hippocratic_not_undoable(self, with_inheritance):
        bx = uml2rdbms_bx(with_inheritance)
        report = check_bx_properties(bx, config=CONFIG)
        assert report.result_for("correct").passed
        assert report.result_for("hippocratic").passed
        assert report.result_for("undoable").failed

    def test_entry_claims_verified(self):
        report = verify_property_claims(
            uml2rdbms_bx(), uml2rdbms_entry().claimed_properties(),
            config=CONFIG)
        assert report.all_passed, report.summary()

    def test_lens_form_well_behaved(self):
        report = check_lens_laws(
            uml2rdbms_lens(), laws=["GetPut", "PutGet", "CreateGet"],
            config=CheckConfig(trials=120, seed=2, shrink=False))
        assert report.all_passed, report.summary()


class TestMetamodel:
    def test_diagram_conforms(self):
        assert uml_metamodel().conforms(shop_diagram())

    def test_inheritance_needs_the_extended_metamodel(self):
        diagram = empty_diagram()
        diagram = add_class(diagram, "Customer", True, [])
        diagram = add_class(diagram, "Order", True, [], parent="Customer")
        assert not uml_metamodel().conforms(diagram)
        assert uml_metamodel(with_inheritance=True).conforms(diagram)
