"""E9: the §4 variation points, behaviourally distinguished."""

from __future__ import annotations

import pytest

from repro.catalogue.composers import (
    CanonicalOrderComposersBx,
    KeyOnNameComposersBx,
    RememberingComposersLens,
    UNKNOWN_DATES,
    composers_bx,
    composers_bx_with_date_policy,
    composers_bx_with_position,
    copy_namesake_dates_policy,
    epoch_dates_policy,
    make_composer,
    unknown_dates_policy,
)
from repro.core.laws import CheckConfig, check_bx_properties, \
    check_symmetric_laws
from repro.core.properties import Hippocratic, SimplyMatching

CONFIG = CheckConfig(trials=250, seed=13)

BRITTEN_BRIT = make_composer("Britten", "1913-1976", "British")
ELGAR = make_composer("Elgar", "1857-1934", "English")
TIPPETT = make_composer("Tippett", "1905-1998", "English")


class TestInsertPositionVariants:
    MODEL = frozenset({ELGAR, TIPPETT})

    def test_end_matches_base(self):
        base = composers_bx()
        variant = composers_bx_with_position("end")
        listing = (("Elgar", "English"),)
        assert variant.fwd(self.MODEL, listing) == \
            base.fwd(self.MODEL, listing)

    def test_front_prepends_sorted_block(self):
        variant = composers_bx_with_position("front")
        listing = (("Elgar", "English"),)
        assert variant.fwd(self.MODEL, listing) == \
            (("Tippett", "English"), ("Elgar", "English"))

    def test_alphabetic_slots_between_existing(self):
        variant = composers_bx_with_position("alphabetic")
        model = frozenset({ELGAR, TIPPETT,
                           make_composer("Holst", "1874-1934", "English")})
        listing = (("Elgar", "English"), ("Tippett", "English"))
        result = variant.fwd(model, listing)
        assert result == (("Elgar", "English"), ("Holst", "English"),
                          ("Tippett", "English"))

    def test_alphabetic_does_not_reorder_user_entries(self):
        """Inserting alphabetically must not sort the user's list."""
        variant = composers_bx_with_position("alphabetic")
        listing = (("Tippett", "English"), ("Elgar", "English"))
        assert variant.fwd(self.MODEL, listing) == listing

    def test_unknown_position_rejected(self):
        with pytest.raises(ValueError):
            composers_bx_with_position("sideways")

    @pytest.mark.parametrize("position", ["end", "front", "alphabetic"])
    def test_all_positions_correct_and_hippocratic(self, position):
        report = check_bx_properties(
            composers_bx_with_position(position), config=CONFIG)
        assert report.result_for("correct").passed
        assert report.result_for("hippocratic").passed


class TestCanonicalOrderFailsHippocraticness:
    def test_reorders_consistent_list(self):
        """'we fail hippocraticness if we choose to reorder when nothing
        at all need be changed'."""
        bx = CanonicalOrderComposersBx()
        model = frozenset({ELGAR, TIPPETT})
        user_order = (("Tippett", "English"), ("Elgar", "English"))
        assert bx.consistent(model, user_order)
        assert bx.fwd(model, user_order) != user_order

    def test_property_check_refutes_hippocraticness(self):
        result = Hippocratic().check(CanonicalOrderComposersBx().checked(),
                                     trials=CONFIG.trials, seed=CONFIG.seed)
        assert result.failed

    def test_still_correct(self):
        report = check_bx_properties(CanonicalOrderComposersBx(),
                                     config=CONFIG)
        assert report.result_for("correct").passed


class TestKeyOnNameVariant:
    def test_britten_nationality_is_modified_not_duplicated(self):
        """'if one side has Britten, British and the other has Britten,
        English, does consistency restoration involve changing one of
        the nationalities, or adding a second Britten?'  With name as
        key: changing."""
        bx = KeyOnNameComposersBx()
        model = frozenset({BRITTEN_BRIT})
        listing = (("Britten", "English"),)
        repaired = bx.bwd(model, listing)
        (composer,) = repaired
        assert composer.nationality == "English"
        assert composer.dates == "1913-1976"  # dates preserved!

    def test_base_bx_would_replace_instead(self):
        base = composers_bx()
        model = frozenset({BRITTEN_BRIT})
        listing = (("Britten", "English"),)
        replaced = base.bwd(model, listing)
        (composer,) = replaced
        assert composer.dates == UNKNOWN_DATES  # fresh composer, dates lost

    def test_fwd_updates_entry_in_place(self):
        bx = KeyOnNameComposersBx()
        model = frozenset({BRITTEN_BRIT, ELGAR})
        listing = (("Elgar", "English"), ("Britten", "English"))
        result = bx.fwd(model, listing)
        assert result == (("Elgar", "English"), ("Britten", "British"))

    def test_correct_and_hippocratic_but_not_simply_matching(self):
        bx = KeyOnNameComposersBx()
        report = check_bx_properties(bx, config=CONFIG)
        assert report.result_for("correct").passed
        assert report.result_for("hippocratic").passed
        matching = SimplyMatching().check(bx.checked(),
                                          trials=CONFIG.trials,
                                          seed=CONFIG.seed)
        assert matching.failed, \
            "in-place modification should break strict simple matching"


class TestDatePolicies:
    def test_unknown_policy_is_base_behaviour(self):
        bx = composers_bx_with_date_policy(unknown_dates_policy, "unknown")
        (created,) = bx.bwd(frozenset(), (("Purcell", "English"),))
        assert created.dates == UNKNOWN_DATES

    def test_epoch_policy(self):
        bx = composers_bx_with_date_policy(epoch_dates_policy, "epoch")
        (created,) = bx.bwd(frozenset(), (("Purcell", "English"),))
        assert created.dates == "0000-0000"

    def test_copy_namesake_policy(self):
        bx = composers_bx_with_date_policy(copy_namesake_dates_policy,
                                           "namesake")
        model = frozenset({BRITTEN_BRIT})
        result = bx.bwd(model, (("Britten", "British"),
                                ("Britten", "Welsh")))
        welsh = next(c for c in result if c.nationality == "Welsh")
        assert welsh.dates == "1913-1976"  # copied from the namesake

    def test_copy_namesake_falls_back_to_unknown(self):
        bx = composers_bx_with_date_policy(copy_namesake_dates_policy,
                                           "namesake")
        (created,) = bx.bwd(frozenset(), (("Purcell", "English"),))
        assert created.dates == UNKNOWN_DATES

    @pytest.mark.parametrize("policy,name", [
        (unknown_dates_policy, "unknown"),
        (epoch_dates_policy, "epoch"),
        (copy_namesake_dates_policy, "namesake"),
    ])
    def test_all_policies_correct_and_hippocratic(self, policy, name):
        report = check_bx_properties(
            composers_bx_with_date_policy(policy, name), config=CONFIG)
        assert report.result_for("correct").passed
        assert report.result_for("hippocratic").passed


class TestRememberingLens:
    def test_round_trip_laws(self):
        report = check_symmetric_laws(RememberingComposersLens(),
                                      config=CheckConfig(trials=150,
                                                         seed=3,
                                                         shrink=False))
        assert report.all_passed, report.summary()

    def test_memory_survives_unrelated_edits(self):
        lens = RememberingComposersLens()
        model = frozenset({BRITTEN_BRIT, ELGAR})
        listing, complement = lens.putr(model, lens.missing())

        # Delete Britten, then separately add Tippett, then re-add Britten.
        without = tuple(pair for pair in listing
                        if pair != ("Britten", "British"))
        _m1, complement = lens.putl(without, complement)
        with_tippett = without + (("Tippett", "English"),)
        _m2, complement = lens.putl(with_tippett, complement)
        final_listing = with_tippett + (("Britten", "British"),)
        final_model, _complement = lens.putl(final_listing, complement)

        britten = next(c for c in final_model if c.name == "Britten")
        assert britten.dates == "1913-1976"
