"""Tests for the string lenses and the misc catalogue examples."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalogue.misc import (
    dirtree_bx,
    int_to_roman,
    paths_to_tree,
    roman_bx,
    roman_to_int,
    tree_to_paths,
)
from repro.catalogue.strings import ComposerLinesLens, ComposerTextLens
from repro.core.laws import CheckConfig, check_bx_properties, check_lens_laws
from repro.models.trees import Node

CONFIG = CheckConfig(trials=150, seed=29, shrink=False)


class TestComposerLinesLens:
    def test_get_drops_dates(self):
        lens = ComposerLinesLens()
        source = ("Britten, 1913-1976, English", "Elgar, 1857-1934, English")
        assert lens.get(source) == ("Britten, English", "Elgar, English")

    def test_put_restores_dates_by_key(self):
        lens = ComposerLinesLens()
        source = ("Britten, 1913-1976, English",)
        view = ("Elgar, English", "Britten, English")
        merged = lens.put(view, source)
        assert merged == ("Elgar, ????-????, English",
                          "Britten, 1913-1976, English")

    def test_reordering_view_preserves_all_dates(self):
        """Resourcefulness: alignment is by key, not by position."""
        lens = ComposerLinesLens()
        source = ("Britten, 1913-1976, English", "Elgar, 1857-1934, English")
        reordered = ("Elgar, English", "Britten, English")
        merged = lens.put(reordered, source)
        assert merged == ("Elgar, 1857-1934, English",
                          "Britten, 1913-1976, English")

    def test_duplicate_keys_claim_dates_in_order(self):
        lens = ComposerLinesLens()
        source = ("Byrd, 1543-1623, Welsh", "Byrd, 1600-1650, Welsh")
        view = ("Byrd, Welsh", "Byrd, Welsh")
        merged = lens.put(view, source)
        assert merged == source

    def test_laws_except_putput(self):
        lens = ComposerLinesLens()
        report = check_lens_laws(lens, config=CONFIG)
        assert report.result_for("GetPut").passed
        assert report.result_for("PutGet").passed
        assert report.result_for("CreateGet").passed
        assert report.result_for("PutPut").failed  # resourceful


class TestComposerTextLens:
    def test_round_trip_on_text(self):
        lens = ComposerTextLens()
        source = "Britten, 1913-1976, English\nElgar, 1857-1934, English"
        assert lens.get(source) == "Britten, English\nElgar, English"
        assert lens.put(lens.get(source), source) == source

    def test_empty_text(self):
        lens = ComposerTextLens()
        assert lens.get("") == ""
        assert lens.put("", "") == ""

    def test_laws(self):
        report = check_lens_laws(ComposerTextLens(),
                                 laws=["GetPut", "PutGet", "CreateGet"],
                                 config=CONFIG)
        assert report.all_passed, report.summary()


class TestRomanNumerals:
    def test_known_values(self):
        assert int_to_roman(1) == "I"
        assert int_to_roman(1994) == "MCMXCIV"
        assert int_to_roman(3999) == "MMMCMXCIX"
        assert roman_to_int("XIV") == 14

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_roman(0)
        with pytest.raises(ValueError):
            int_to_roman(4000)

    def test_rejects_non_canonical(self):
        with pytest.raises(ValueError):
            roman_to_int("IIII")
        with pytest.raises(ValueError):
            roman_to_int("VX")
        with pytest.raises(ValueError):
            roman_to_int("hello")

    @given(st.integers(1, 3999))
    @settings(max_examples=300, deadline=None)
    def test_bijection_round_trip(self, number):
        assert roman_to_int(int_to_roman(number)) == number

    def test_bx_has_every_property(self):
        report = check_bx_properties(roman_bx(), config=CONFIG)
        failed = [r.law for r in report.results if r.failed]
        assert not failed, report.summary()


class TestDirtree:
    def test_flatten_and_rebuild(self):
        tree = Node("root", children=[
            Node("bin", children=[Node("a")]),
            Node("doc"),
        ])
        paths = tree_to_paths(tree)
        assert paths == ("root", "root/bin", "root/bin/a", "root/doc")
        assert paths_to_tree(paths) == tree

    def test_rebuild_rejects_multi_root(self):
        with pytest.raises(ValueError, match="multiple roots"):
            paths_to_tree(("a", "b"))

    def test_rebuild_rejects_gaps(self):
        with pytest.raises(ValueError, match="interior"):
            paths_to_tree(("root", "root/a/b"))

    def test_rebuild_rejects_empty(self):
        with pytest.raises(ValueError):
            paths_to_tree(())

    def test_bx_properties(self):
        report = check_bx_properties(dirtree_bx(), config=CONFIG)
        failed = [r.law for r in report.results
                  if r.failed and r.law != "simply matching"]
        assert not failed, report.summary()
