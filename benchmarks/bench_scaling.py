"""E14 / COMPOSERS-BENCH: restoration cost scaling (the benchmark entry).

Regenerates the scaling series: forward and backward Composers
restoration at model sizes 10/100/1000, plus an interactive edit
session.  Restoration is set/dict-based, so the expected shape is
near-linear in model size; the assertion at the bottom of each run is
consistency, so a benchmark cannot silently measure a broken operation.
"""

from __future__ import annotations

import pytest

from repro.catalogue.composers import composers_bx
from repro.harness.generators import (
    consistent_composer_pair,
    random_pair_edit_script,
)

SIZES = (10, 100, 1000)


@pytest.fixture(scope="module")
def bx():
    return composers_bx()


@pytest.mark.parametrize("size", SIZES)
def test_fwd_restoration_scaling(benchmark, bx, size):
    left, right = consistent_composer_pair(size, seed=1)
    perturbed = random_pair_edit_script(right, max(size // 10, 1),
                                        seed=1).apply(right)
    result = benchmark(bx.fwd, left, perturbed)
    assert bx.consistent(left, result)


@pytest.mark.parametrize("size", SIZES)
def test_bwd_restoration_scaling(benchmark, bx, size):
    left, right = consistent_composer_pair(size, seed=2)
    perturbed = random_pair_edit_script(right, max(size // 10, 1),
                                        seed=2).apply(right)
    result = benchmark(bx.bwd, left, perturbed)
    assert bx.consistent(result, perturbed)


@pytest.mark.parametrize("size", (10, 100))
def test_edit_session(benchmark, bx, size):
    """An interactive session: restore after every one of 20 edits."""
    left0, right0 = consistent_composer_pair(size, seed=3)
    script = random_pair_edit_script(right0, 20, seed=3)

    def session():
        left, right = left0, right0
        for edit in script.edits:
            right = edit.apply(right)
            left = bx.bwd(left, right)
        return left, right

    left, right = benchmark(session)
    assert bx.consistent(left, right)


def test_consistency_check_scaling(benchmark, bx):
    """consistency itself is the hot path of hippocraticness checks."""
    left, right = consistent_composer_pair(1000, seed=4)
    assert benchmark(bx.consistent, left, right)
