"""Backend comparison: memory vs file vs sqlite on the three paths that
matter at scale — bulk-load, point-get, and search-after-update.

Two layers:

* pytest-benchmark micro-benchmarks of each operation per backend
  (small sizes, so the suite stays quick; ``--bench-large`` raises them);
* :class:`TestAccelerationTargets` — explicit wall-clock ratio checks
  for the wins the service/backends refactor was built to deliver:

  - SQLite ``add_many`` bulk-load (1000 entries) ≥ 5× faster than the
    per-file ``FileStore`` load of the same entries;
  - cached point-gets through :class:`RepositoryService` ≥ 5× faster
    than uncached per-file ``FileStore`` access;
  - the incremental index update after a single ``add_version`` ≥ 10×
    faster than a full :meth:`SearchIndex.build`;

* :class:`TestReadPathTargets` — the PR-4 read-path overhaul (these
  two ratios are the CI bench regression gate's floors):

  - a warm ``render_wiki_pages`` through the event-driven
    :class:`~repro.repository.render_cache.RenderCache` after a
    single-entry write ≥ 20× faster than a full re-render;
  - a repeated ``get_many`` through the
    :class:`~repro.repository.codec.DecodeMemo` ≥ 3× faster than the
    same backend's cold first read;
  - plus a Zipfian ``cache_size`` sweep (``CACHE_RATIOS``) whose
    hit-rate/latency curve rides into the trend artifact via
    ``extra_info``;

* :class:`TestScalingTargets` — the sharded/replicated layer, driven by
  Zipfian read streams from :mod:`repro.harness.workloads`:

  - ``get_many`` over shards with per-request latency (the remote/cold
    child model, :class:`LatencyShard`) gets *faster with shard count*,
    because the fan-out overlaps the children's latencies;
  - over purely local in-process SQLite shards the same sweep is
    recorded as a *no-regression* bound: the GIL serialises the
    JSON-decode work, so fan-out cannot beat one warm local shard —
    the honest measurement the trend file tracks per PR;
  - ``anti_entropy()`` restores primary/replica equality after injected
    divergence, and a clean pass reports nothing to repair.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.harness.workloads import zipfian_identifiers
from repro.repository.backends import (
    FileBackend,
    MemoryBackend,
    ReplicatedBackend,
    ShardedBackend,
    SQLiteBackend,
    StorageBackend,
)
from repro.repository.query import Q, plan
from repro.repository.entry import (
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    RestorationSpec,
)
from repro.repository.render_cache import RenderCache
from repro.repository.search import SearchIndex
from repro.repository.service import RepositoryService
from repro.repository.template import EntryType
from repro.repository.versioning import Version
from repro.repository.wiki_sync import render_wiki_pages

_WORDS = ("composer sync view model schema tree update merge lens "
          "delta span alignment").split()


def make_entry(index: int) -> ExampleEntry:
    """A small but realistic entry with searchable text."""
    words = " ".join(_WORDS[(index + offset) % len(_WORDS)]
                     for offset in range(5))
    return ExampleEntry(
        title=f"GENERATED EXAMPLE {index}",
        version=Version(0, 1),
        types=(EntryType.PRECISE,),
        overview=f"Generated entry number {index}: {words}.",
        models=(ModelDescription("M", f"Left model {words}."),
                ModelDescription("N", f"Right model {index}.")),
        consistency=f"They agree on {words}.",
        restoration=RestorationSpec(forward="Copy.", backward="Copy back."),
        discussion=f"Benchmark filler {words} {index}.",
        authors=("Bench",),
        properties=(PropertyClaim("correct"),),
    )


def make_entries(count: int) -> list[ExampleEntry]:
    return [make_entry(index) for index in range(count)]


@pytest.fixture(scope="module")
def bulk_size(large_sizes) -> int:
    return 2000 if large_sizes else 200


def _backend(kind: str, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    if kind == "file":
        return FileBackend(tmp_path / "repo")
    return SQLiteBackend(tmp_path / "repo.db")


class LatencyShard(StorageBackend):
    """A shard whose batch reads cost realistic service time.

    Models what a shard looks like once it is *not* a warm local file: a
    fixed round trip per batch call plus a per-requested-entry service
    time paid on the shard's own hardware (cold reads, server-side
    CPU).  ``sleep`` releases the GIL, exactly as a remote child or the
    kernel would, so the fan-out genuinely overlaps the children — a
    single shard serves a batch in ``fixed + n·per_item``; N shards
    serve it in ``fixed + (n/N)·per_item``.
    """

    def __init__(self, inner: StorageBackend, *,
                 fixed: float = 0.001, per_item: float = 0.0001) -> None:
        self.inner = inner
        self.fixed = fixed
        self.per_item = per_item

    def identifiers(self):
        return self.inner.identifiers()

    def versions(self, identifier):
        return self.inner.versions(identifier)

    def get(self, identifier, version=None):
        time.sleep(self.fixed + self.per_item)
        return self.inner.get(identifier, version)

    def has(self, identifier):
        return self.inner.has(identifier)

    def add(self, entry):
        self.inner.add(entry)

    def add_version(self, entry):
        self.inner.add_version(entry)

    def replace_latest(self, entry):
        self.inner.replace_latest(entry)

    def add_many(self, entries):
        batch = list(entries)
        time.sleep(self.fixed + self.per_item * len(batch))
        return self.inner.add_many(batch)

    def get_many(self, requests):
        time.sleep(self.fixed + self.per_item * len(requests))
        return self.inner.get_many(requests)

    def versions_many(self, identifiers):
        time.sleep(self.fixed + self.per_item * len(identifiers))
        return self.inner.versions_many(identifiers)

    def entry_count(self):
        return self.inner.entry_count()

    def close(self):
        self.inner.close()


def sharded_sqlite(tmp_path, shard_count: int,
                   entries) -> ShardedBackend:
    backend = ShardedBackend.create("sqlite", tmp_path,
                                    shard_count=shard_count)
    backend.add_many(entries)
    return backend


# ----------------------------------------------------------------------
# Micro-benchmarks per backend.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", ["memory", "file", "sqlite"])
def test_bulk_load(benchmark, kind, bulk_size, tmp_path_factory):
    entries = make_entries(bulk_size)
    counter = [0]

    def load():
        counter[0] += 1
        backend = _backend(
            kind, tmp_path_factory.mktemp(f"{kind}{counter[0]}"))
        stored = backend.add_many(entries)
        backend.close()
        return stored

    assert benchmark(load) == bulk_size


@pytest.mark.parametrize("kind", ["memory", "file", "sqlite"])
def test_point_get_uncached(benchmark, kind, bulk_size, tmp_path_factory):
    backend = _backend(kind, tmp_path_factory.mktemp(f"g-{kind}"))
    backend.add_many(make_entries(bulk_size))
    identifier = f"generated-example-{bulk_size // 2}"

    got = benchmark(backend.get, identifier)
    assert got.identifier == identifier
    backend.close()


@pytest.mark.parametrize("kind", ["memory", "file", "sqlite"])
def test_point_get_cached_service(benchmark, kind, bulk_size,
                                  tmp_path_factory):
    service = RepositoryService(
        _backend(kind, tmp_path_factory.mktemp(f"c-{kind}")))
    service.add_many(make_entries(bulk_size))
    identifier = f"generated-example-{bulk_size // 2}"
    service.get(identifier)  # warm

    got = benchmark(service.get, identifier)
    assert got.identifier == identifier
    service.close()


@pytest.mark.parametrize("kind", ["memory", "file", "sqlite"])
def test_search_after_update(benchmark, kind, bulk_size, tmp_path_factory):
    """One write plus the incremental reindex it triggers, plus a query."""
    service = RepositoryService(
        _backend(kind, tmp_path_factory.mktemp(f"u-{kind}")))
    service.add_many(make_entries(bulk_size))
    service.enable_search()
    target = service.get("generated-example-0")
    minor = [1]

    def update_and_search():
        minor[0] += 1
        service.add_version(target.with_version(Version(0, minor[0])))
        return service.query("generated composer").hits

    assert benchmark(update_and_search)
    service.close()


# ----------------------------------------------------------------------
# Micro-benchmarks of the scaling layer.
# ----------------------------------------------------------------------

#: The faceted query the pushdown benchmarks exercise: free text and
#: a structured filter, ranked, first page only.
def pushdown_plan():
    return plan(Q.text("composer tree") & Q.property("correct"),
                limit=10)


@pytest.mark.parametrize("shard_count", [1, 2, 4])
def test_sharded_query_fanout(benchmark, shard_count, bulk_size,
                              tmp_path_factory):
    """One faceted query fanned out across N local sqlite shards.

    Phase one aggregates global IDF statistics, phase two runs the
    compiled plan on each shard in parallel and merge-sorts the
    partial pages — the trend file tracks the fan-out overhead per
    shard count.
    """
    entries = make_entries(bulk_size)
    backend = sharded_sqlite(
        tmp_path_factory.mktemp(f"qshards{shard_count}"),
        shard_count, entries)

    result = benchmark(backend.execute_query, pushdown_plan())
    assert result.total > 0
    assert len(result.hits) == 10
    backend.close()


def test_sqlite_query_pushdown(benchmark, bulk_size, tmp_path_factory):
    """The compiled-to-SQL plan on one warm sqlite store."""
    backend = SQLiteBackend(
        tmp_path_factory.mktemp("qpush") / "repo.db")
    backend.add_many(make_entries(bulk_size))

    result = benchmark(backend.execute_query, pushdown_plan())
    assert result.total > 0
    backend.close()


def test_query_python_evaluator(benchmark, bulk_size, tmp_path_factory):
    """The same plan through the in-Python fallback (the baseline)."""
    backend = SQLiteBackend(
        tmp_path_factory.mktemp("qpy") / "repo.db")
    backend.add_many(make_entries(bulk_size))

    result = benchmark(
        lambda: StorageBackend.execute_query(backend, pushdown_plan()))
    assert result.total > 0
    backend.close()


@pytest.mark.parametrize("shard_count", [1, 2, 4])
def test_sharded_zipfian_get_many(benchmark, shard_count, bulk_size,
                                  tmp_path_factory):
    """Zipf-skewed batch reads over N local sqlite shards."""
    entries = make_entries(bulk_size)
    backend = sharded_sqlite(
        tmp_path_factory.mktemp(f"shards{shard_count}"),
        shard_count, entries)
    requests = zipfian_identifiers(
        bulk_size, [entry.identifier for entry in entries], seed=7)

    results = benchmark(backend.get_many, requests)
    assert len(results) == len(requests)
    backend.close()


def test_replicated_write_through(benchmark, bulk_size, tmp_path_factory):
    """add_many through a sqlite primary mirrored to a file replica."""
    entries = make_entries(bulk_size)
    counter = [0]

    def load():
        counter[0] += 1
        root = tmp_path_factory.mktemp(f"repl{counter[0]}")
        backend = ReplicatedBackend(SQLiteBackend(root / "primary.db"),
                                    FileBackend(root / "replica"))
        stored = backend.add_many(entries)
        backend.close()
        return stored

    assert benchmark(load) == bulk_size


def test_anti_entropy_clean_pass(benchmark, bulk_size, tmp_path_factory):
    """The cost of verifying a replica that needs no repair."""
    entries = make_entries(bulk_size)
    root = tmp_path_factory.mktemp("entropy")
    backend = ReplicatedBackend(SQLiteBackend(root / "primary.db"),
                                SQLiteBackend(root / "replica.db"))
    backend.add_many(entries)

    report = benchmark(backend.anti_entropy)
    assert not report.changed
    backend.close()


# ----------------------------------------------------------------------
# The read-path caches: Zipfian cache-size sweep (the sizing curve the
# trend artifact records) and repeated-read micro-benchmarks.
# ----------------------------------------------------------------------

#: The fractions of the corpus the service LRU is sized to in the
#: sweep — four points spanning "tiny" to "fits everything", so the
#: hit-rate/latency curve in the trend artifact has a real shape.
CACHE_RATIOS = (0.05, 0.2, 0.5, 1.0)


@pytest.mark.parametrize("cache_ratio", CACHE_RATIOS)
def test_zipfian_cache_size_sweep(benchmark, cache_ratio, bulk_size,
                                  tmp_path_factory):
    """Zipf-skewed reads through the service LRU at one cache size.

    The benchmark times a full Zipfian ``get_many`` stream over a
    file store (misses pay real I/O + decode); the steady-state hit
    rate and the absolute cache size ride along as ``extra_info``, so
    ``BENCH_PR<N>.json`` records the whole hit-rate/latency curve.
    """
    cache_size = max(4, int(bulk_size * cache_ratio))
    backend = FileBackend(
        tmp_path_factory.mktemp(f"zipf{cache_size}") / "repo")
    entries = make_entries(bulk_size)
    backend.add_many(entries)
    service = RepositoryService(backend, cache_size=cache_size)
    requests = zipfian_identifiers(
        bulk_size, [entry.identifier for entry in entries], seed=11)

    results = benchmark(service.get_many, requests)
    assert len(results) == len(requests)

    info = service.cache_info()
    lookups = info["hits"] + info["misses"]
    benchmark.extra_info["cache_size"] = cache_size
    benchmark.extra_info["population"] = bulk_size
    benchmark.extra_info["hit_rate"] = round(info["hits"] / lookups, 4)
    service.close()


def test_repeated_get_many_through_decode_memo(benchmark, bulk_size,
                                               tmp_path_factory):
    """The decode-memo fast path: a warm batch read re-decodes nothing."""
    root = tmp_path_factory.mktemp("memo") / "repo"
    entries = make_entries(bulk_size)
    FileBackend(root).add_many(entries)
    backend = FileBackend(root)  # fresh instance: memo starts cold
    requests = [entry.identifier for entry in entries]
    backend.get_many(requests)  # warm the memo once

    results = benchmark(backend.get_many, requests)
    assert len(results) == bulk_size
    stats = backend.cache_stats()
    benchmark.extra_info["memo_hits"] = stats["decode_memo"]["hits"]


def test_warm_render_wiki_pages(benchmark, bulk_size, tmp_path_factory):
    """Event-driven render cache: one write, one re-render per call."""
    backend = SQLiteBackend(
        tmp_path_factory.mktemp("render") / "repo.db")
    service = RepositoryService(backend)
    service.add_many(make_entries(bulk_size))
    cache = RenderCache(service)
    render_wiki_pages(service, cache=cache)  # cold fill
    target = service.get("generated-example-0")
    minor = [1]

    def write_one_and_rerender():
        minor[0] += 1
        service.add_version(target.with_version(Version(0, minor[0])))
        return render_wiki_pages(service, cache=cache)

    pages = benchmark(write_one_and_rerender)
    assert len(pages) == bulk_size
    service.close()


# ----------------------------------------------------------------------
# The acceptance targets, as explicit wall-clock ratios.
# ----------------------------------------------------------------------

def _clock(operation) -> float:
    start = time.perf_counter()
    operation()
    return time.perf_counter() - start


def _clock_fresh(make_operation, rounds: int = 3) -> float:
    """Best-of-N for non-repeatable operations: each round gets a fresh
    operation from ``make_operation`` (e.g. a new empty store)."""
    return min(_clock(make_operation()) for _round in range(rounds))


class TestAccelerationTargets:
    SIZE = 1000

    def test_sqlite_bulk_load_beats_per_file_store(self, tmp_path):
        entries = make_entries(self.SIZE)
        counter = [0]

        def fresh_file_load():
            counter[0] += 1
            backend = FileBackend(tmp_path / f"files{counter[0]}")
            return lambda: [backend.add(entry) for entry in entries]

        def fresh_sqlite_load():
            counter[0] += 1
            backend = SQLiteBackend(tmp_path / f"repo{counter[0]}.db")
            return lambda: backend.add_many(entries)

        file_seconds = _clock_fresh(fresh_file_load)
        sqlite_seconds = _clock_fresh(fresh_sqlite_load)

        ratio = file_seconds / sqlite_seconds
        print(f"\nbulk-load {self.SIZE}: file {file_seconds:.3f}s, "
              f"sqlite add_many {sqlite_seconds:.3f}s "
              f"({ratio:.1f}x faster)")
        assert ratio >= 5.0

    def test_cached_point_get_beats_uncached_file_store(self, tmp_path):
        file_backend = FileBackend(tmp_path / "files")
        file_backend.add_many(make_entries(100))
        identifiers = [f"generated-example-{index % 100}"
                       for index in range(1000)]

        # The PR-1 baseline this ratio was defined against is the
        # *decoding* per-file store; the PR-4 decode memo would
        # otherwise absorb 90% of the repeats and flatter the
        # baseline, so it is disabled for the baseline measurement.
        from repro.repository.codec import DecodeMemo
        file_backend._memo = DecodeMemo(maxsize=0)
        uncached = _clock(lambda: [file_backend.get(identifier)
                                   for identifier in identifiers])

        service = RepositoryService(file_backend, cache_size=256)
        for identifier in set(identifiers):
            service.get(identifier)  # warm
        cached = _clock(lambda: [service.get(identifier)
                                 for identifier in identifiers])

        ratio = uncached / cached
        print(f"\npoint-get x1000: uncached file {uncached:.3f}s, "
              f"cached service {cached:.3f}s ({ratio:.1f}x faster)")
        assert ratio >= 5.0

    def test_incremental_update_beats_full_rebuild(self):
        service = RepositoryService(MemoryBackend())
        service.add_many(make_entries(self.SIZE))
        service.enable_search()

        rebuild = _clock(lambda: SearchIndex().build(service))

        target = service.get("generated-example-0")
        incremental = _clock(
            lambda: service.add_version(target.with_version(Version(0, 2))))

        ratio = rebuild / incremental
        print(f"\nsearch update: full build {rebuild * 1000:.1f}ms, "
              f"incremental after add_version "
              f"{incremental * 1000:.2f}ms ({ratio:.1f}x faster)")
        assert ratio >= 10.0


class TestQueryPushdownTargets:
    """The unified-query acceptance ratio: SQL pushdown must beat the
    in-Python evaluator by >= 5x on a 5k-entry store."""

    SIZE = 5000

    def test_sql_pushdown_beats_python_evaluator(self, tmp_path):
        backend = SQLiteBackend(tmp_path / "repo.db")
        backend.add_many(make_entries(self.SIZE))
        query_plan = pushdown_plan()

        # Same plan, same store, both paths must agree before we race
        # them: the native SQL compilation vs the base-class fallback
        # that materialises and tokenises every latest snapshot.
        pushed = backend.execute_query(query_plan)
        python = StorageBackend.execute_query(backend, query_plan)
        assert pushed.total == python.total > 0
        assert pushed.identifiers == python.identifiers
        assert pushed.facets == python.facets

        python_seconds = _clock(
            lambda: StorageBackend.execute_query(backend, query_plan))
        sqlite_seconds = min(
            _clock(lambda: backend.execute_query(query_plan))
            for _round in range(3))

        ratio = python_seconds / sqlite_seconds
        print(f"\nfaceted query over {self.SIZE}: in-Python evaluator "
              f"{python_seconds * 1000:.1f}ms, SQL pushdown "
              f"{sqlite_seconds * 1000:.1f}ms ({ratio:.1f}x faster)")
        assert ratio >= 5.0
        backend.close()


class TestScalingTargets:
    """The sharded/replicated layer, measured and bounded."""

    SIZE = 1000
    READS = 600
    PER_ITEM = 0.0001  # 100µs of shard-side service time per request

    def _zipf_requests(self, entries, count=None):
        identifiers = [entry.identifier for entry in entries]
        return zipfian_identifiers(count or self.READS, identifiers,
                                   seed=7)

    def test_sharded_get_many_scales_with_shard_count(self, tmp_path):
        """get_many throughput grows with N once shards do real work.

        Each latent shard serves its sub-batch in
        ``fixed + (n/N)·per_item`` on its own (simulated) hardware; the
        fan-out overlaps the shards, so the wall clock falls as N
        grows.  This is the scenario sharding exists for — the purely
        local warm-cache sweep next door records why it is *not*
        visible in-process.
        """
        entries = make_entries(self.SIZE)
        requests = self._zipf_requests(entries)
        timings = {}
        for shard_count in (1, 2, 4):
            root = tmp_path / f"lat{shard_count}"
            root.mkdir()
            backend = ShardedBackend(
                [LatencyShard(SQLiteBackend(root / f"shard-{index}.db"),
                              per_item=self.PER_ITEM)
                 for index in range(shard_count)])
            backend.add_many(entries)
            timings[shard_count] = _clock(
                lambda: backend.get_many(requests))
            backend.close()

        print("\nsharded get_many, latent shards "
              f"({self.PER_ITEM * 1e6:.0f}µs/item shard-side):")
        for shard_count, seconds in timings.items():
            print(f"  {shard_count} shard(s): {seconds * 1000:.1f}ms "
                  f"({self.READS / seconds:.0f} req/s)")
        speedup = timings[1] / timings[4]
        print(f"  speedup 1->4 shards: {speedup:.2f}x")
        assert timings[2] < timings[1]
        assert timings[4] < timings[2]
        assert speedup >= 1.5

    def test_sharded_get_many_local_no_regression(self, tmp_path):
        """In-process warm sqlite shards: fan-out must cost ~nothing.

        The GIL serialises JSON decode, so local sharding cannot beat
        one warm shard — this row pins the overhead so the trend file
        catches it regressing.
        """
        from repro.repository.codec import DecodeMemo

        entries = make_entries(self.SIZE)
        requests = self._zipf_requests(entries)
        timings = {}
        for shard_count in (1, 2, 4):
            backend = sharded_sqlite(tmp_path / f"loc{shard_count}",
                                     shard_count, entries)
            # This row pins the *fan-out overhead* against real
            # per-request decode work, the PR-2 calibration.  The PR-4
            # decode memo would otherwise absorb the work entirely and
            # leave pool-dispatch overhead as the dominant term, making
            # the 2x bound a measure of scheduler noise instead — so it
            # is disabled here (its own rows live in TestReadPathTargets
            # and test_repeated_get_many_through_decode_memo).
            for shard in backend.shards:
                shard._memo = DecodeMemo(maxsize=0)
            timings[shard_count] = min(
                _clock(lambda: backend.get_many(requests))
                for _round in range(3))
            backend.close()
        print("\nsharded get_many, local warm shards:")
        for shard_count, seconds in timings.items():
            print(f"  {shard_count} shard(s): {seconds * 1000:.1f}ms "
                  f"({self.READS / seconds:.0f} req/s)")
        assert timings[4] <= timings[1] * 2.0

    def test_anti_entropy_repairs_injected_divergence(self, tmp_path):
        """After divergence, one repair pass restores replica equality."""
        primary = SQLiteBackend(tmp_path / "primary.db")
        replica = FileBackend(tmp_path / "replica")
        backend = ReplicatedBackend(primary, replica)
        entries = make_entries(300)
        backend.add_many(entries)

        # Injected divergence: 60 new versions and 20 hot rewrites land
        # on the primary while the replica is "offline".
        for entry in entries[:60]:
            primary.add_version(entry.with_version(Version(0, 2)))
        for entry in entries[60:80]:
            primary.replace_latest(
                dataclasses.replace(entry, overview="Rewritten."))

        seconds = _clock(backend.anti_entropy)
        print(f"\nanti-entropy over 300 entries, 80 divergent: "
              f"{seconds * 1000:.1f}ms")

        report = backend.anti_entropy()  # the timed pass repaired all
        assert not report.changed
        assert report.conflicts == []
        identifiers = primary.identifiers()
        assert identifiers == replica.identifiers()
        assert primary.versions_many(identifiers) == \
            replica.versions_many(identifiers)
        for entry in entries[60:80]:
            assert replica.get(entry.identifier).overview == "Rewritten."
        backend.close()


class TestReadPathTargets:
    """The PR-4 read-path overhaul, as explicit wall-clock ratios.

    These are the floors the CI bench regression gate holds every PR
    to: the event-driven render cache must make a warm collection
    render after a single-entry write >= 20x faster than a full
    re-render, and the decode memo must make a repeated batch read
    >= 3x faster than the same backend's cold first read.
    """

    SIZE = 400

    def test_warm_render_wiki_pages_beats_full_rerender(self, tmp_path):
        service = RepositoryService(SQLiteBackend(tmp_path / "repo.db"))
        service.add_many(make_entries(self.SIZE))
        cache = RenderCache(service)
        render_wiki_pages(service, cache=cache)  # cold fill

        # One entry changes; a warm cached render must re-render
        # exactly that entry...
        target = service.get("generated-example-0")
        service.add_version(target.with_version(Version(0, 2)))
        before = cache.cache_stats()
        warm = min(
            _clock(lambda: render_wiki_pages(service, cache=cache))
            for _round in range(3))
        after = cache.cache_stats()
        assert after["misses"] - before["misses"] == 1  # only the write

        # ...while the uncached path re-renders the whole collection.
        full = _clock(lambda: render_wiki_pages(service))

        ratio = full / warm
        print(f"\nrender_wiki_pages over {self.SIZE} after one write: "
              f"full re-render {full * 1000:.1f}ms, render cache "
              f"{warm * 1000:.2f}ms ({ratio:.1f}x faster)")
        assert ratio >= 20.0
        service.close()

    def test_decode_memoised_get_many_beats_cold(self, tmp_path):
        entries = make_entries(self.SIZE)
        FileBackend(tmp_path / "repo").add_many(entries)
        requests = [entry.identifier for entry in entries]

        backend = FileBackend(tmp_path / "repo")  # fresh: memo cold
        cold = _clock(lambda: backend.get_many(requests))
        warm = min(_clock(lambda: backend.get_many(requests))
                   for _round in range(3))

        memo = backend.cache_stats()["decode_memo"]
        assert memo["hits"] >= 3 * self.SIZE  # the warm rounds hit

        ratio = cold / warm
        print(f"\nget_many x{self.SIZE}: cold decode {cold * 1000:.1f}ms, "
              f"memoised {warm * 1000:.2f}ms ({ratio:.1f}x faster)")
        assert ratio >= 3.0
