"""Backend comparison: memory vs file vs sqlite on the three paths that
matter at scale — bulk-load, point-get, and search-after-update.

Two layers:

* pytest-benchmark micro-benchmarks of each operation per backend
  (small sizes, so the suite stays quick; ``--bench-large`` raises them);
* :class:`TestAccelerationTargets` — explicit wall-clock ratio checks
  for the wins the service/backends refactor was built to deliver:

  - SQLite ``add_many`` bulk-load (1000 entries) ≥ 5× faster than the
    per-file ``FileStore`` load of the same entries;
  - cached point-gets through :class:`RepositoryService` ≥ 5× faster
    than uncached per-file ``FileStore`` access;
  - the incremental index update after a single ``add_version`` ≥ 10×
    faster than a full :meth:`SearchIndex.build`.
"""

from __future__ import annotations

import time

import pytest

from repro.repository.backends import (
    FileBackend,
    MemoryBackend,
    SQLiteBackend,
)
from repro.repository.entry import (
    ExampleEntry,
    ModelDescription,
    PropertyClaim,
    RestorationSpec,
)
from repro.repository.search import SearchIndex
from repro.repository.service import RepositoryService
from repro.repository.template import EntryType
from repro.repository.versioning import Version

_WORDS = ("composer sync view model schema tree update merge lens "
          "delta span alignment").split()


def make_entry(index: int) -> ExampleEntry:
    """A small but realistic entry with searchable text."""
    words = " ".join(_WORDS[(index + offset) % len(_WORDS)]
                     for offset in range(5))
    return ExampleEntry(
        title=f"GENERATED EXAMPLE {index}",
        version=Version(0, 1),
        types=(EntryType.PRECISE,),
        overview=f"Generated entry number {index}: {words}.",
        models=(ModelDescription("M", f"Left model {words}."),
                ModelDescription("N", f"Right model {index}.")),
        consistency=f"They agree on {words}.",
        restoration=RestorationSpec(forward="Copy.", backward="Copy back."),
        discussion=f"Benchmark filler {words} {index}.",
        authors=("Bench",),
        properties=(PropertyClaim("correct"),),
    )


def make_entries(count: int) -> list[ExampleEntry]:
    return [make_entry(index) for index in range(count)]


@pytest.fixture(scope="module")
def bulk_size(large_sizes) -> int:
    return 2000 if large_sizes else 200


def _backend(kind: str, tmp_path):
    if kind == "memory":
        return MemoryBackend()
    if kind == "file":
        return FileBackend(tmp_path / "repo")
    return SQLiteBackend(tmp_path / "repo.db")


# ----------------------------------------------------------------------
# Micro-benchmarks per backend.
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", ["memory", "file", "sqlite"])
def test_bulk_load(benchmark, kind, bulk_size, tmp_path_factory):
    entries = make_entries(bulk_size)
    counter = [0]

    def load():
        counter[0] += 1
        backend = _backend(
            kind, tmp_path_factory.mktemp(f"{kind}{counter[0]}"))
        stored = backend.add_many(entries)
        backend.close()
        return stored

    assert benchmark(load) == bulk_size


@pytest.mark.parametrize("kind", ["memory", "file", "sqlite"])
def test_point_get_uncached(benchmark, kind, bulk_size, tmp_path_factory):
    backend = _backend(kind, tmp_path_factory.mktemp(f"g-{kind}"))
    backend.add_many(make_entries(bulk_size))
    identifier = f"generated-example-{bulk_size // 2}"

    got = benchmark(backend.get, identifier)
    assert got.identifier == identifier
    backend.close()


@pytest.mark.parametrize("kind", ["memory", "file", "sqlite"])
def test_point_get_cached_service(benchmark, kind, bulk_size,
                                  tmp_path_factory):
    service = RepositoryService(
        _backend(kind, tmp_path_factory.mktemp(f"c-{kind}")))
    service.add_many(make_entries(bulk_size))
    identifier = f"generated-example-{bulk_size // 2}"
    service.get(identifier)  # warm

    got = benchmark(service.get, identifier)
    assert got.identifier == identifier
    service.close()


@pytest.mark.parametrize("kind", ["memory", "file", "sqlite"])
def test_search_after_update(benchmark, kind, bulk_size, tmp_path_factory):
    """One write plus the incremental reindex it triggers, plus a query."""
    service = RepositoryService(
        _backend(kind, tmp_path_factory.mktemp(f"u-{kind}")))
    service.add_many(make_entries(bulk_size))
    service.enable_search()
    target = service.get("generated-example-0")
    minor = [1]

    def update_and_search():
        minor[0] += 1
        service.add_version(target.with_version(Version(0, minor[0])))
        return service.search("generated composer")

    assert benchmark(update_and_search)
    service.close()


# ----------------------------------------------------------------------
# The acceptance targets, as explicit wall-clock ratios.
# ----------------------------------------------------------------------

def _clock(operation) -> float:
    start = time.perf_counter()
    operation()
    return time.perf_counter() - start


def _clock_fresh(make_operation, rounds: int = 3) -> float:
    """Best-of-N for non-repeatable operations: each round gets a fresh
    operation from ``make_operation`` (e.g. a new empty store)."""
    return min(_clock(make_operation()) for _round in range(rounds))


class TestAccelerationTargets:
    SIZE = 1000

    def test_sqlite_bulk_load_beats_per_file_store(self, tmp_path):
        entries = make_entries(self.SIZE)
        counter = [0]

        def fresh_file_load():
            counter[0] += 1
            backend = FileBackend(tmp_path / f"files{counter[0]}")
            return lambda: [backend.add(entry) for entry in entries]

        def fresh_sqlite_load():
            counter[0] += 1
            backend = SQLiteBackend(tmp_path / f"repo{counter[0]}.db")
            return lambda: backend.add_many(entries)

        file_seconds = _clock_fresh(fresh_file_load)
        sqlite_seconds = _clock_fresh(fresh_sqlite_load)

        ratio = file_seconds / sqlite_seconds
        print(f"\nbulk-load {self.SIZE}: file {file_seconds:.3f}s, "
              f"sqlite add_many {sqlite_seconds:.3f}s "
              f"({ratio:.1f}x faster)")
        assert ratio >= 5.0

    def test_cached_point_get_beats_uncached_file_store(self, tmp_path):
        file_backend = FileBackend(tmp_path / "files")
        file_backend.add_many(make_entries(100))
        identifiers = [f"generated-example-{index % 100}"
                       for index in range(1000)]

        uncached = _clock(lambda: [file_backend.get(identifier)
                                   for identifier in identifiers])

        service = RepositoryService(file_backend, cache_size=256)
        for identifier in set(identifiers):
            service.get(identifier)  # warm
        cached = _clock(lambda: [service.get(identifier)
                                 for identifier in identifiers])

        ratio = uncached / cached
        print(f"\npoint-get x1000: uncached file {uncached:.3f}s, "
              f"cached service {cached:.3f}s ({ratio:.1f}x faster)")
        assert ratio >= 5.0

    def test_incremental_update_beats_full_rebuild(self):
        service = RepositoryService(MemoryBackend())
        service.add_many(make_entries(self.SIZE))
        service.enable_search()

        rebuild = _clock(lambda: SearchIndex().build(service))

        target = service.get("generated-example-0")
        incremental = _clock(
            lambda: service.add_version(target.with_version(Version(0, 2))))

        ratio = rebuild / incremental
        print(f"\nsearch update: full build {rebuild * 1000:.1f}ms, "
              f"incremental after add_version "
              f"{incremental * 1000:.2f}ms ({ratio:.1f}x faster)")
        assert ratio >= 10.0
