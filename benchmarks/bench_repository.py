"""E1/E10/E11: repository operation costs — template validation,
store round trips, versioned retrieval, search, citation."""

from __future__ import annotations

import pytest

from repro.catalogue import builtin_catalogue, populate_store
from repro.catalogue.composers import composers_entry
from repro.repository.citation import archive_manuscript, cite_entry
from repro.repository.entry import ExampleEntry
from repro.repository.search import SearchIndex
from repro.repository.store import FileStore, MemoryStore
from repro.repository.validation import validate_entry
from repro.repository.versioning import Version


@pytest.fixture(scope="module")
def populated_memory():
    store = MemoryStore()
    populate_store(store)
    return store


def test_template_validation(benchmark):
    entry = composers_entry()
    report = benchmark(validate_entry, entry)
    assert report.ok


def test_entry_serialisation_round_trip(benchmark):
    entry = composers_entry()

    def round_trip():
        return ExampleEntry.from_dict(entry.to_dict())

    assert benchmark(round_trip) == entry


def test_file_store_write_and_read(benchmark, tmp_path_factory):
    entry = composers_entry()
    counter = [0]

    def write_read():
        counter[0] += 1
        store = FileStore(tmp_path_factory.mktemp(f"s{counter[0]}"))
        store.add(entry)
        return store.get(entry.identifier)

    assert benchmark(write_read) == entry


def test_versioned_history_retrieval(benchmark, populated_memory):
    store = MemoryStore()
    entry = composers_entry()
    store.add(entry)
    for minor in range(2, 30):
        store.add_version(entry.with_version(Version(0, minor)))

    old = benchmark(store.get, "composers", Version(0, 1))
    assert old.version == Version(0, 1)


def test_search_index_build(benchmark, populated_memory):
    index = benchmark(lambda: SearchIndex().build(populated_memory))
    assert len(index) == len(builtin_catalogue())


def test_search_query(benchmark, populated_memory):
    index = SearchIndex().build(populated_memory)
    hits = benchmark(index.search, "composers nationality list")
    assert hits


def test_citation_and_archive(benchmark, populated_memory):
    def cite_all():
        texts = [cite_entry(populated_memory.get(identifier))
                 for identifier in populated_memory.identifiers()]
        manuscript = archive_manuscript(populated_memory)
        return texts, manuscript

    texts, manuscript = benchmark(cite_all)
    assert manuscript["entry_count"] == len(texts)
