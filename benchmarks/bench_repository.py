"""E1/E10/E11: repository operation costs — template validation,
store round trips, versioned retrieval, search, citation — measured
through the :class:`RepositoryService` facade, which is how every
consumer now reaches storage."""

from __future__ import annotations

import pytest

from repro.catalogue import builtin_catalogue, populate_store
from repro.catalogue.composers import composers_entry
from repro.repository.backends import FileBackend, MemoryBackend
from repro.repository.citation import archive_manuscript, cite_entry
from repro.repository.entry import ExampleEntry
from repro.repository.search import SearchIndex
from repro.repository.service import RepositoryService
from repro.repository.validation import validate_entry
from repro.repository.versioning import Version


@pytest.fixture(scope="module")
def populated_service():
    service = RepositoryService(MemoryBackend())
    populate_store(service)
    return service


def test_template_validation(benchmark):
    entry = composers_entry()
    report = benchmark(validate_entry, entry)
    assert report.ok


def test_entry_serialisation_round_trip(benchmark):
    entry = composers_entry()

    def round_trip():
        return ExampleEntry.from_dict(entry.to_dict())

    assert benchmark(round_trip) == entry


def test_file_backend_write_and_read(benchmark, tmp_path_factory):
    entry = composers_entry()
    counter = [0]

    def write_read():
        counter[0] += 1
        service = RepositoryService(
            FileBackend(tmp_path_factory.mktemp(f"s{counter[0]}")))
        service.add(entry)
        service.invalidate()  # measure the durable round trip, not the cache
        return service.get(entry.identifier)

    assert benchmark(write_read) == entry


def test_cached_point_get(benchmark, populated_service):
    populated_service.get("composers")  # warm

    got = benchmark(populated_service.get, "composers")
    assert got.identifier == "composers"
    assert populated_service.cache_info()["hits"] > 0


def test_versioned_history_retrieval(benchmark):
    service = RepositoryService(MemoryBackend())
    entry = composers_entry()
    service.add(entry)
    for minor in range(2, 30):
        service.add_version(entry.with_version(Version(0, minor)))

    old = benchmark(service.get, "composers", Version(0, 1))
    assert old.version == Version(0, 1)


def test_search_index_build(benchmark, populated_service):
    index = benchmark(lambda: SearchIndex().build(populated_service))
    assert len(index) == len(builtin_catalogue())


def test_search_query(benchmark, populated_service):
    hits = benchmark(
        lambda: populated_service.query(
            "composers nationality list").hits)
    assert hits


def test_incremental_index_update(benchmark, populated_service):
    """One write reindexes one entry — never the whole store."""
    populated_service.enable_search()
    entry = populated_service.get("composers")
    minor = [entry.version.minor]

    def write_and_reindex():
        minor[0] += 1
        populated_service.add_version(
            entry.with_version(Version(entry.version.major, minor[0])))

    benchmark(write_and_reindex)
    assert len(populated_service.search_index) == len(builtin_catalogue())


def test_citation_and_archive(benchmark, populated_service):
    def cite_all():
        texts = [cite_entry(entry)
                 for entry in populated_service.get_many(
                     populated_service.identifiers())]
        manuscript = archive_manuscript(populated_service)
        return texts, manuscript

    texts, manuscript = benchmark(cite_all)
    assert manuscript["entry_count"] == len(texts)
