"""The write path at scale: group commit + coalescing under load.

PR 10 rebuilt the ingest path — adjacent queued writes in
:class:`~repro.repository.aservice.AsyncRepositoryService` drain as one
group committed through a single backend transaction
(``service.write_group()``), so N concurrent writers pay one durable
commit per *group* instead of one per write.  This file measures exactly
that claim, with the usual honesty rules:

* the ingested repository sits on a **durable** :class:`SQLiteBackend`
  (``durability="full"``: every commit fsyncs).  That is the deployment
  group commit exists for — under WAL's relaxed ``synchronous=NORMAL``
  commits barely cost anything and coalescing only buys back the
  transaction bookkeeping;
* writers are real ``asyncio`` coroutines going through the public
  ``add()`` coroutine, each keeping a bounded window of writes in
  flight — the shape of a bulk loader or a busy API frontend, not a
  hand-built fast path;
* the serialised baseline is the *same* stack with ``max_coalesce=1``
  (every write its own commit), so the measured ratio isolates the
  group-commit win and nothing else;
* :class:`TestWritePathTargets` pins the ISSUE's acceptance floors —
  coalesced 4-writer ingest **>= 3x** the serialised write ops/s, and
  read p50 *during* ingest within the no-regression bound — plus the
  sustained 90/10 read/write Zipfian mix whose throughput rides into
  the trend artifact.

The sweep rows' ``extra_info`` (ops/second, coalescing group sizes,
read p50s) ride into ``BENCH_PR<N>.json`` via ``benchmarks/trend.py``.
"""

from __future__ import annotations

import asyncio
import random
import time

import pytest

from bench_store_backends import make_entries
from repro.harness.workloads import zipfian_identifiers
from repro.repository.aservice import AsyncRepositoryService
from repro.repository.backends import SQLiteBackend

#: The ISSUE's acceptance shape: four concurrent writer coroutines.
INGEST_WRITERS = 4

#: Writes each writer issues during a measured ingest run.
PER_WRITER = 250

#: In-flight window per writer (a loader pipelines, it does not
#: ping-pong one write at a time over the loop).
WRITE_WINDOW = 32

#: The mixed sustained run: 90% reads / 10% writes, Zipfian targets.
MIX_OPS = 1200
MIX_READ_SHARE = 0.9

#: Pre-loaded corpus the read side hits during mixed/under-ingest runs.
READ_POPULATION = 400


class IngestStack:
    """One durable-SQLite async service, ready for a measured ingest."""

    def __init__(self, tmp_path, *, max_coalesce: int = 128,
                 preload: int = 0) -> None:
        tmp_path.mkdir(parents=True, exist_ok=True)
        self.backend = SQLiteBackend(tmp_path / "ingest.db",
                                     durability="full")
        if preload:
            self.preloaded = make_entries(preload)
            self.backend.add_many(self.preloaded)
        else:
            self.preloaded = []
        self.identifiers = [entry.identifier for entry in self.preloaded]
        self.service = AsyncRepositoryService(
            self.backend,
            max_coalesce=max_coalesce,
            max_pending_writes=None,
        )

    async def _writer(self, share) -> None:
        add = self.service.add
        for start in range(0, len(share), WRITE_WINDOW):
            window = share[start:start + WRITE_WINDOW]
            await asyncio.gather(*[add(entry) for entry in window])

    async def ingest(self, entries, writers: int) -> float:
        """Split ``entries`` across N writer coroutines; returns ops/s."""
        per_writer = len(entries) // writers
        shares = [entries[index * per_writer:(index + 1) * per_writer]
                  for index in range(writers)]
        started = time.perf_counter()
        await asyncio.gather(*[self._writer(share) for share in shares])
        elapsed = time.perf_counter() - started
        return len(entries) / elapsed

    def run_ingest(self, entries, writers: int = INGEST_WRITERS) -> float:
        return asyncio.run(self.ingest(entries, writers))

    def close(self) -> None:
        asyncio.run(self.service.close())


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * fraction))]


async def _timed_reads(service: AsyncRepositoryService,
                       stream: list[str]) -> list[float]:
    """Sequential point reads, each timed — the latency a client sees."""
    samples: list[float] = []
    for identifier in stream:
        started = time.perf_counter()
        await service.get(identifier)
        samples.append(time.perf_counter() - started)
    return samples


# ----------------------------------------------------------------------
# The sweep rows (ingest + mixed throughput into the trend artifact).
# ----------------------------------------------------------------------


@pytest.mark.parametrize("max_coalesce", [1, 128])
def test_ingest_rate_sweep(benchmark, tmp_path, max_coalesce):
    """4-writer durable ingest, serialised vs coalesced."""
    stack = IngestStack(tmp_path / str(max_coalesce),
                        max_coalesce=max_coalesce)
    entries = make_entries(INGEST_WRITERS * PER_WRITER)
    try:
        rate = benchmark.pedantic(
            stack.run_ingest, args=(entries,), rounds=1)
        stats = stack.service.admission_stats()
    finally:
        stack.close()
    benchmark.extra_info["writers"] = INGEST_WRITERS
    benchmark.extra_info["max_coalesce"] = max_coalesce
    benchmark.extra_info["write_ops_per_second"] = round(rate, 1)
    benchmark.extra_info["coalesced_groups"] = stats["coalesced_groups"]
    benchmark.extra_info["coalesce_high_water"] = \
        stats["coalesce_high_water"]
    assert rate > 0


def test_mixed_90_10_zipfian_throughput(benchmark, tmp_path):
    """The sustained mix: 90% Zipfian point reads, 10% writes.

    Four workers each replay a seeded 90/10 op stream against a
    pre-loaded durable repository — the steady-state shape of a live
    collection (readers dominate, ingest trickles).  Every op must
    succeed; the sustained ops/second rides into the trend.
    """
    stack = IngestStack(tmp_path, preload=READ_POPULATION)
    fresh = make_entries(READ_POPULATION + MIX_OPS)[READ_POPULATION:]
    workers = 4
    per_worker = MIX_OPS // workers

    async def worker(seed: int) -> int:
        rng = random.Random(seed)
        reads = zipfian_identifiers(per_worker, stack.identifiers,
                                    seed=seed)
        writes = iter(fresh[seed * per_worker:(seed + 1) * per_worker])
        done = 0
        for index in range(per_worker):
            if rng.random() < MIX_READ_SHARE:
                await stack.service.get(reads[index])
            else:
                await stack.service.add(next(writes))
            done += 1
        return done

    async def run_mix() -> float:
        started = time.perf_counter()
        counts = await asyncio.gather(
            *[worker(seed) for seed in range(workers)])
        elapsed = time.perf_counter() - started
        assert sum(counts) == workers * per_worker
        return sum(counts) / elapsed

    try:
        rate = benchmark.pedantic(
            lambda: asyncio.run(run_mix()), rounds=1)
        stats = stack.service.admission_stats()
    finally:
        stack.close()
    benchmark.extra_info["read_share"] = MIX_READ_SHARE
    benchmark.extra_info["ops_per_second"] = round(rate, 1)
    benchmark.extra_info["coalesced_groups"] = stats["coalesced_groups"]
    assert rate > 0


# ----------------------------------------------------------------------
# The acceptance targets, as explicit wall-clock ratios.
# ----------------------------------------------------------------------


class TestWritePathTargets:
    """The write-path floors CI's bench gate holds every PR to."""

    def test_coalesced_ingest_at_least_3x_serialised(self, tmp_path):
        """The ISSUE's acceptance criterion, measured end to end.

        Serialised ingest (``max_coalesce=1``) pays one durable commit
        — one fsync — per write, so four writers still land one commit
        per entry.  The coalescing path drains runs of adjacent queued
        writes as one group commit; with four pipelining writers the
        groups reach the watermark and the fsync count collapses by two
        orders of magnitude.  3x is the floor; the measured ratio on
        the CI containers is typically 4-6x.
        """
        entries = make_entries(INGEST_WRITERS * PER_WRITER)
        serial = IngestStack(tmp_path / "serial", max_coalesce=1)
        try:
            serial_rate = serial.run_ingest(entries)
            serial_stats = serial.service.admission_stats()
        finally:
            serial.close()
        coalesced = IngestStack(tmp_path / "coalesced")
        try:
            coalesced_rate = coalesced.run_ingest(entries)
            stats = coalesced.service.admission_stats()
        finally:
            coalesced.close()
        assert serial_stats["coalesced_groups"] == 0, \
            "max_coalesce=1 baseline still formed groups"
        assert stats["coalesced_groups"] >= 1
        assert stats["coalesce_high_water"] > 1
        ratio = coalesced_rate / serial_rate
        print(f"\ndurable 4-writer ingest: serialised "
              f"{serial_rate:6.0f} ops/s, coalesced "
              f"{coalesced_rate:6.0f} ops/s ({ratio:.1f}x, "
              f"{stats['coalesced_groups']} groups, high water "
              f"{stats['coalesce_high_water']})")
        assert ratio >= 3.0, (
            f"coalesced ingest only {ratio:.2f}x the serialised "
            f"baseline: group commit is not amortising the fsyncs")

    def test_read_p50_during_ingest_within_bound(self, tmp_path):
        """Reads must not fall off a cliff while ingest bursts.

        A reader replays Zipfian point gets against the pre-loaded
        corpus twice — once idle, once while four coalescing writers
        ingest — and the under-ingest p50 must stay within the
        no-regression bound: at most 10x the idle p50 and never above
        an absolute 50ms.  The writer-preference lock makes *some*
        inflation unavoidable (a group commit holds the write lock for
        the whole group); the bound keeps it a stall, not an outage.
        """
        stack = IngestStack(tmp_path, preload=READ_POPULATION)
        entries = make_entries(
            READ_POPULATION + INGEST_WRITERS * PER_WRITER
        )[READ_POPULATION:]
        reads = 200

        async def measure() -> tuple[float, float]:
            idle = await _timed_reads(
                stack.service, zipfian_identifiers(
                    reads, stack.identifiers, seed=11))
            ingest = asyncio.ensure_future(
                stack.ingest(entries, INGEST_WRITERS))
            # Let the burst actually start before sampling under it.
            await asyncio.sleep(0.01)
            under = await _timed_reads(
                stack.service, zipfian_identifiers(
                    reads, stack.identifiers, seed=13))
            await ingest
            return _percentile(idle, 0.5), _percentile(under, 0.5)

        try:
            idle_p50, ingest_p50 = asyncio.run(measure())
        finally:
            stack.close()
        bound = max(10 * idle_p50, 0.050)
        print(f"\nread p50: idle {idle_p50 * 1000:.2f}ms, under "
              f"ingest {ingest_p50 * 1000:.2f}ms "
              f"(bound {bound * 1000:.1f}ms)")
        assert ingest_p50 <= bound, (
            f"read p50 under ingest {ingest_p50 * 1000:.1f}ms blew the "
            f"no-regression bound {bound * 1000:.1f}ms")

    def test_coalescing_commits_orders_fewer_transactions(self, tmp_path):
        """The mechanism check behind the throughput floor: the durable
        change counter (one bump per commit unit) moves by *groups*,
        not by writes, under coalesced ingest."""
        stack = IngestStack(tmp_path)
        entries = make_entries(INGEST_WRITERS * PER_WRITER)
        try:
            before = stack.backend.change_counter()
            stack.run_ingest(entries)
            commits = stack.backend.change_counter() - before
            stats = stack.service.admission_stats()
            stored = stack.backend.entry_count()
        finally:
            stack.close()
        writes = len(entries)
        assert stored == writes
        print(f"\n{writes} writes landed in {commits} commit units "
              f"({stats['coalesced_groups']} multi-op groups)")
        assert commits < writes / 3, (
            f"{writes} writes took {commits} commits: coalescing is "
            f"not forming groups")
