"""E13 and friends: cross-example costs — UML2RDBMS, dbview, strings.

One benchmark per non-Composers executable example so the whole
catalogue's restoration costs appear in one report.
"""

from __future__ import annotations

import random


from repro.catalogue.misc import dirtree_bx, roman_bx
from repro.catalogue.strings import ComposerLinesLens
from repro.catalogue.uml2rdbms import uml2rdbms_bx


def test_uml2rdbms_bwd(benchmark):
    bx = uml2rdbms_bx()
    rng = random.Random(11)
    diagram = bx.left_space.sample(rng)
    schema = bx.right_space.sample(rng)
    repaired = benchmark(bx.bwd, diagram, schema)
    assert bx.consistent(repaired, schema)


def test_uml2rdbms_inheritance_bwd(benchmark):
    bx = uml2rdbms_bx(with_inheritance=True)
    rng = random.Random(12)
    diagram = bx.left_space.sample(rng)
    schema = bx.right_space.sample(rng)
    repaired = benchmark(bx.bwd, diagram, schema)
    assert bx.consistent(repaired, schema)


def test_string_lens_put_large(benchmark):
    """Resourceful alignment over a 500-line composers file."""
    lens = ComposerLinesLens()
    rng = random.Random(13)
    names = [f"Composer{i:04d}" for i in range(500)]
    source = tuple(f"{name}, 1900-1980, British" for name in names)
    view = lens.get(source)
    shuffled = list(view)
    rng.shuffle(shuffled)
    merged = benchmark(lens.put, tuple(shuffled), source)
    assert len(merged) == 500
    assert all("1900-1980" in line for line in merged)


def test_roman_round_trip(benchmark):
    bx = roman_bx()

    def sweep():
        return [bx.bwd(0, bx.fwd(number, "")) for number in
                range(1, 1000, 37)]

    values = benchmark(sweep)
    assert values == list(range(1, 1000, 37))


def test_dirtree_round_trip(benchmark):
    bx = dirtree_bx()
    rng = random.Random(14)
    tree = bx.left_space.sample(rng)

    def round_trip():
        return bx.bwd(tree, bx.fwd(tree, ()))

    assert benchmark(round_trip) == tree
