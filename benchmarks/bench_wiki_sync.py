"""E12: the §5.4 wiki-sync bx — render, parse, and full round trips."""

from __future__ import annotations

import pytest

from repro.catalogue import builtin_catalogue
from repro.catalogue.composers import composers_entry
from repro.repository.export import render_markdown, render_wikidot
from repro.repository.wiki_sync import (
    WikiSyncLens,
    normalise_entry,
    parse_wikidot,
)


@pytest.fixture(scope="module")
def entry():
    return normalise_entry(composers_entry())


def test_render_wikidot(benchmark, entry):
    page = benchmark(render_wikidot, entry)
    assert page.startswith("+ COMPOSERS")


def test_render_markdown(benchmark, entry):
    text = benchmark(render_markdown, entry)
    assert text.startswith("# COMPOSERS")


def test_parse_wikidot(benchmark, entry):
    page = render_wikidot(entry)
    fields = benchmark(parse_wikidot, page)
    assert fields["title"] == "COMPOSERS"


def test_lens_round_trip(benchmark, entry):
    lens = WikiSyncLens()

    def round_trip():
        return lens.put(lens.get(entry), entry)

    assert benchmark(round_trip) == entry


def test_whole_catalogue_sync(benchmark):
    """Sync every built-in entry: the §5.4 local-copy maintenance job."""
    lens = WikiSyncLens()
    entries = [normalise_entry(example.entry())
               for example in builtin_catalogue()]

    def sync_all():
        return [lens.put(lens.get(entry), entry) for entry in entries]

    synced = benchmark(sync_all)
    assert synced == entries
