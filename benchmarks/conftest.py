"""Benchmark suite configuration (pytest-benchmark)."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-large", action="store_true", default=False,
        help="include the largest (slow) scaling sizes")


@pytest.fixture(scope="session")
def large_sizes(request) -> bool:
    return request.config.getoption("--bench-large")
