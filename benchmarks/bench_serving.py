"""The serving layer: concurrent-reader throughput through HTTP.

The PR-5 serving stack (``repro.repository.server`` +
``repro.repository.client``) exists so many readers can hit one
repository at once.  This file measures exactly that, with the same
honesty rules as the sharded sweep in ``bench_store_backends``:

* the served repository sits on a :class:`LatencyShard` — storage with
  a fixed per-request service time whose ``sleep`` releases the GIL,
  modelling the deployment the ROADMAP aims at (data on disk or on
  another box, not resident in the serving process's heap).  The
  facade's LRU is disabled for the sweep so every request pays the
  storage path; the LRU's own wins are measured in
  ``bench_store_backends``, not re-counted here;
* client threads each hold a keep-alive connection (the backend's
  thread-local) and replay a Zipfian identifier stream from
  :mod:`repro.harness.workloads` — repository reads are rank-skewed,
  not uniform;
* :class:`TestServingTargets` pins the acceptance floor the ISSUE
  sets — 16 concurrent reader threads must push **>= 3x** the
  single-thread request rate through the full HTTP layer — plus a
  latency sanity bound on the warm in-memory single-read path (the
  TCP_NODELAY regression guard: with Nagle stalls back, localhost
  round-trips jump from ~0.3ms to ~40ms and this fails loudly).

The parametrised sweep rows (and their requests/second ``extra_info``)
ride into ``BENCH_PR<N>.json`` via ``benchmarks/trend.py``, so the
trend records the whole threads/throughput curve per PR.
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from dataclasses import replace

import pytest

from bench_store_backends import LatencyShard, make_entries, make_entry
from repro.core.errors import BackendUnavailableError
from repro.harness.workloads import zipfian_identifiers
from repro.repository import (
    FaultInjector,
    FlakyBackend,
    ReplicatedBackend,
    RetryPolicy,
)
from repro.repository.backends import MemoryBackend
from repro.repository.client import HTTPBackend
from repro.repository.codec import EncodeMemo, LineMemo
from repro.repository.query import Q
from repro.repository.server import RepositoryServer
from repro.repository.service import RepositoryService

#: The client-thread sweep of the ISSUE's acceptance criterion.
SERVING_THREADS = (1, 4, 16)

#: Modelled storage service time per point read (GIL released).
STORAGE_LATENCY = 0.002

#: Entries served; small enough for CI, big enough for a Zipf tail.
POPULATION = 240

#: The streamed-batch floor's corpus (the ISSUE's 10k-entry read).
BULK_POPULATION = 10_000

#: Overview padding for the conditional-read floor (~1MB on the wire).
LARGE_OVERVIEW_WORDS = 200_000


class ServingStack:
    """One served repository + one shared client, ready to be hammered."""

    def __init__(self, *, latency: float = STORAGE_LATENCY,
                 cache_size: int = 0) -> None:
        self.entries = make_entries(POPULATION)
        inner = MemoryBackend()
        backend = LatencyShard(inner, fixed=latency, per_item=0.0)
        # Populate through the fast path, serve through the slow one.
        inner.add_many(self.entries)
        self.service = RepositoryService(backend, cache_size=cache_size)
        self.server = RepositoryServer(self.service).start()
        self.client = HTTPBackend(self.server.url)
        self.identifiers = [entry.identifier for entry in self.entries]

    def read_stream(self, count: int, seed: int = 7) -> list[str]:
        return zipfian_identifiers(count, self.identifiers, seed=seed)

    def run_readers(self, threads: int, requests_per_thread: int) -> float:
        """Replay Zipfian reads from N threads; returns requests/second.

        Every thread pre-opens its keep-alive connection before the
        barrier drops, so the measured window contains only request
        traffic — no connection setup, no thread start-up.
        """
        stream = self.read_stream(threads * requests_per_thread)
        barrier = threading.Barrier(threads + 1)
        errors: list[Exception] = []

        def reader(offset: int) -> None:
            try:
                self.client.get(self.identifiers[0])  # open the conn
                barrier.wait()
                for index in range(requests_per_thread):
                    self.client.get(stream[offset + index])
            except Exception as error:  # pragma: no cover - fails below
                errors.append(error)
                raise

        workers = [
            threading.Thread(target=reader,
                             args=(index * requests_per_thread,))
            for index in range(threads)
        ]
        for worker in workers:
            worker.start()
        barrier.wait()
        started = time.perf_counter()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        assert not errors, errors
        return (threads * requests_per_thread) / elapsed

    def run_readers_timed(
        self, threads: int, requests_per_thread: int
    ) -> tuple[float, list[float]]:
        """Like :meth:`run_readers`, but records per-request latency.

        Returns ``(requests/second, latencies)`` — the raw samples let
        the caller take whichever percentile it is gating on.  Each
        thread gets its own keep-alive :class:`HTTPBackend` (the shared
        client's thread-local connection cache would serialise 64
        threads through one socket dance on first touch).
        """
        stream = self.read_stream(threads * requests_per_thread)
        barrier = threading.Barrier(threads + 1)
        errors: list[Exception] = []
        samples: list[list[float]] = [[] for _ in range(threads)]

        def reader(slot: int) -> None:
            client = HTTPBackend(self.server.url)
            try:
                client.get(self.identifiers[0])  # open the conn
                barrier.wait()
                offset = slot * requests_per_thread
                for index in range(requests_per_thread):
                    began = time.perf_counter()
                    client.get(stream[offset + index])
                    samples[slot].append(time.perf_counter() - began)
            except Exception as error:  # pragma: no cover - fails below
                errors.append(error)
                raise
            finally:
                client.close()

        workers = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(threads)]
        for worker in workers:
            worker.start()
        barrier.wait()
        started = time.perf_counter()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - started
        assert not errors, errors
        flat = [value for per_thread in samples for value in per_thread]
        return (threads * requests_per_thread) / elapsed, flat

    def close(self) -> None:
        self.client.close()
        self.server.stop()
        self.service.close()


@pytest.fixture(scope="module")
def stack():
    built = ServingStack()
    yield built
    built.close()


@pytest.fixture(scope="module")
def warm_stack():
    """An in-memory, fully cached stack: the HTTP layer's own floor."""
    built = ServingStack(latency=0.0, cache_size=POPULATION * 2)
    yield built
    built.close()


# ----------------------------------------------------------------------
# The sweep rows (threads/throughput curve into the trend artifact).
# ----------------------------------------------------------------------


@pytest.mark.parametrize("threads", SERVING_THREADS)
def test_concurrent_read_sweep(benchmark, stack, threads):
    """Zipfian point reads from N client threads over latent storage."""
    requests_per_thread = 30

    rate = benchmark(stack.run_readers, threads, requests_per_thread)
    benchmark.extra_info["client_threads"] = threads
    benchmark.extra_info["requests_per_second"] = round(rate, 1)
    benchmark.extra_info["storage_latency_ms"] = STORAGE_LATENCY * 1000
    assert rate > 0


def test_64_client_p99_latency(benchmark, stack):
    """The tail at heavy fan-in: 64 concurrent clients, p99 per read.

    Four times the sweep's widest row — past the server's handler
    comfort zone, where queueing (not storage latency) sets the tail.
    The p99 rides into the trend so a regression in the accept/dispatch
    path shows up as tail growth long before throughput moves, and the
    bound keeps the tail an order of magnitude under a queueing
    collapse.
    """
    clients = 64
    requests_per_thread = 10

    def run() -> tuple[float, list[float]]:
        return stack.run_readers_timed(clients, requests_per_thread)

    rate, samples = benchmark.pedantic(run, rounds=1)
    ordered = sorted(samples)
    p50 = ordered[int(len(ordered) * 0.50)]
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
    benchmark.extra_info["client_threads"] = clients
    benchmark.extra_info["requests_per_second"] = round(rate, 1)
    benchmark.extra_info["read_p50_ms"] = round(p50 * 1000, 3)
    benchmark.extra_info["read_p99_ms"] = round(p99 * 1000, 3)
    print(f"\n64-client reads: {rate:.0f} req/s, "
          f"p50 {p50 * 1000:.1f}ms, p99 {p99 * 1000:.1f}ms")
    assert p99 < 1.0, (
        f"64-client read p99 {p99:.3f}s: the serving path is "
        f"queueing toward collapse")


def test_http_query_round_trip(benchmark, warm_stack):
    """POST /query: the wire codec + server-side execution, warm."""
    result = benchmark(
        warm_stack.client.query, Q.text("composer sync"), limit=10)
    assert result.total > 0
    benchmark.extra_info["hits"] = len(result.hits)


def test_http_wiki_page_warm(benchmark, warm_stack):
    """GET /wiki/{id} served from the render cache (no re-render)."""
    identifier = warm_stack.identifiers[0]
    warm_stack.server.render_cache.wiki_page(identifier)  # warm it

    def fetch():
        connection = warm_stack.client._connection()
        connection.request("GET", f"/wiki/{identifier}")
        response = connection.getresponse()
        return response.read()

    page = benchmark(fetch)
    assert page.decode("utf-8").startswith("+ GENERATED")


def test_http_point_read_304_warm(benchmark, warm_stack):
    """GET /entries/{id} revalidated: If-None-Match in, 304 out.

    The client's validation cache already holds the entry, so a warm
    read costs one header exchange — no codec work on either side.
    """
    identifier = warm_stack.identifiers[0]
    warm_stack.client.get(identifier)  # prime the validation cache

    entry = benchmark(warm_stack.client.get, identifier)
    assert entry.identifier == identifier
    stats = warm_stack.client.wire_cache_stats()
    assert stats["validation"]["hits"] >= 1
    benchmark.extra_info["revalidated"] = True


def test_http_batch_get_streamed(benchmark, warm_stack):
    """POST /batch/get as chunked NDJSON, both wire memos warm."""
    warm_stack.client.get_many(warm_stack.identifiers)  # warm memos

    entries = benchmark(warm_stack.client.get_many,
                        warm_stack.identifiers)
    assert len(entries) == POPULATION
    benchmark.extra_info["streamed"] = True
    benchmark.extra_info["batch_size"] = POPULATION


# ----------------------------------------------------------------------
# The acceptance targets, as explicit wall-clock ratios.
# ----------------------------------------------------------------------


class TestServingTargets:
    """The serving-layer floors CI's bench gate holds every PR to."""

    def test_16_thread_throughput_at_least_3x_single_thread(self):
        """The ISSUE's acceptance criterion, measured end to end.

        Single-thread throughput over latent storage is bounded by one
        request's round trip (storage sleep + HTTP overhead, serial);
        16 keep-alive client threads overlap the storage waits through
        16 server handler threads, so the rate must scale.  3x is the
        floor; the typical measured ratio on the CI containers is
        5-8x (the GIL serialises only the JSON/socket CPU slice).
        """
        stack = ServingStack()
        try:
            rates = {
                threads: stack.run_readers(threads,
                                           requests_per_thread=30)
                for threads in SERVING_THREADS
            }
        finally:
            stack.close()
        print("\nHTTP concurrent-reader sweep "
              f"({STORAGE_LATENCY * 1000:.0f}ms storage latency):")
        for threads, rate in rates.items():
            print(f"  {threads:2d} thread(s): {rate:7.0f} req/s")
        ratio = rates[16] / rates[1]
        print(f"  16-thread vs single-thread: {ratio:.1f}x")
        assert ratio >= 3.0

    def test_warm_single_read_latency_sane(self):
        """The TCP_NODELAY guard: a warm in-memory read through the
        whole HTTP layer stays well under the ~40ms Nagle stall."""
        stack = ServingStack(latency=0.0, cache_size=POPULATION * 2)
        try:
            identifier = stack.identifiers[0]
            stack.client.get(identifier)  # connection + cache warm
            rounds = 50
            started = time.perf_counter()
            for _round in range(rounds):
                stack.client.get(identifier)
            per_request = (time.perf_counter() - started) / rounds
        finally:
            stack.close()
        print(f"\nwarm HTTP point read: {per_request * 1000:.2f}ms")
        assert per_request < 0.02  # 20ms: an order below the stall

    def test_304_revalidation_at_least_10x_the_full_fetch(self):
        """The conditional-read floor on a ~1MB entry.

        A revalidated read moves two header blocks and zero body; a
        full fetch serialises, compresses, ships, and re-parses a
        megabyte.  10x is the floor — the measured gap on the CI
        containers is far wider, and it is exactly the work a 304
        exists to skip.
        """
        big = replace(make_entry(0),
                      overview="wire " * LARGE_OVERVIEW_WORDS)
        service = RepositoryService(MemoryBackend())
        service.add(big)
        server = RepositoryServer(service).start()
        client = HTTPBackend(server.url)
        identifier = big.identifier
        rounds = 25
        try:
            client.get(identifier)  # 200: primes the validation cache
            started = time.perf_counter()
            for _round in range(rounds):
                client.get(identifier)
            revalidated = (time.perf_counter() - started) / rounds
            assert client.wire_cache_stats()["validation"]["hits"] \
                >= rounds

            started = time.perf_counter()
            for _round in range(rounds):
                client._validation.clear()  # forget the ETag: full 200
                client.get(identifier)
            full = (time.perf_counter() - started) / rounds
        finally:
            client.close()
            server.stop()
            service.close()
        ratio = full / revalidated
        print(f"\n~1MB point read: 200 {full * 1000:.2f}ms, "
              f"304 {revalidated * 1000:.3f}ms ({ratio:.0f}x)")
        assert ratio >= 10.0

    def test_streamed_batch_get_2x_faster_and_memory_bounded(self):
        """The streamed-batch floor: 10k entries over one POST.

        Warm, the streamed path is wire-memo hits end to end — the
        server replays encoded lines, the client's line memo skips the
        JSON parse — while the buffered path re-materialises the full
        4MB body on both sides every time.  Floors: at least 2x the
        buffered wall clock, and a client-side allocation peak under
        half the buffered one (pages, not the corpus, in memory).
        """
        entries = make_entries(BULK_POPULATION)
        service = RepositoryService(MemoryBackend())
        service.add_many(entries)
        server = RepositoryServer(service)
        # Size the wire memos to the corpus, as warm_stack does for the
        # entry LRU: the floor measures the steady warm state.
        server.wire_memo = EncodeMemo(maxsize=BULK_POPULATION * 2)
        server.start()
        streamer = HTTPBackend(server.url)
        streamer._line_memo = LineMemo(maxsize=BULK_POPULATION * 2)
        buffered = HTTPBackend(server.url, stream_batches=False)
        identifiers = [entry.identifier for entry in entries]
        try:
            # Warm both paths once (wire memos, connections).
            assert sum(1 for _ in streamer.iter_many(identifiers)) \
                == BULK_POPULATION
            assert len(buffered.get_many(identifiers)) == BULK_POPULATION

            tracemalloc.start()
            started = time.perf_counter()
            streamed_count = sum(
                1 for _ in streamer.iter_many(identifiers))
            streamed_time = time.perf_counter() - started
            _, streamed_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()

            tracemalloc.start()
            started = time.perf_counter()
            buffered_entries = buffered.get_many(identifiers)
            buffered_time = time.perf_counter() - started
            _, buffered_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        finally:
            streamer.close()
            buffered.close()
            server.stop()
            service.close()
        assert streamed_count == len(buffered_entries) == BULK_POPULATION
        ratio = buffered_time / streamed_time
        print(f"\n10k-entry batch get: buffered {buffered_time:.3f}s, "
              f"streamed {streamed_time:.3f}s ({ratio:.1f}x); "
              f"peaks {buffered_peak / 1e6:.1f}MB vs "
              f"{streamed_peak / 1e6:.1f}MB")
        assert ratio >= 2.0
        assert streamed_peak < buffered_peak / 2

    def test_overload_shed_rate_under_2x_capacity(self, benchmark):
        """The PR-9 load-shedding floor: 2x-capacity overload is shed,
        and the *accepted* requests still finish promptly.

        The server's admission bound is clamped to 4 in-flight handlers
        over 5ms-latent storage and 8 single-attempt clients hammer it.
        Without shedding the excess queues unboundedly and every
        request's latency grows with the backlog; with it, the extras
        get an immediate 503 + Retry-After and the admitted ones pay
        roughly one storage round trip.  Floors: at least one request
        shed, every shed typed with a retry hint, accepted p99 under
        500ms (an order of magnitude below a queueing collapse).
        """
        capacity = 4
        clients = 2 * capacity
        requests_each = 25
        entries = make_entries(POPULATION)
        inner = MemoryBackend()
        inner.add_many(entries)
        backend = LatencyShard(inner, fixed=0.005, per_item=0.0)
        service = RepositoryService(backend, cache_size=0)
        server = RepositoryServer(service, max_inflight=capacity,
                                  shed_retry_after=0.05).start()
        identifiers = [entry.identifier for entry in entries]
        accepted: list[float] = []
        sheds: list[BackendUnavailableError] = []

        def storm(seed: int) -> None:
            # One attempt, no client-side retry: every 503 is counted.
            client = HTTPBackend(
                server.url, retry_policy=RetryPolicy(max_attempts=1))
            stream = zipfian_identifiers(requests_each, identifiers,
                                         seed=seed)
            for identifier in stream:
                started = time.perf_counter()
                try:
                    client.get(identifier)
                except BackendUnavailableError as error:
                    sheds.append(error)
                else:
                    accepted.append(time.perf_counter() - started)
            client.close()

        def run_storm() -> int:
            accepted.clear()
            sheds.clear()
            workers = [threading.Thread(target=storm, args=(seed,))
                       for seed in range(clients)]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
            return len(sheds)

        try:
            shed_count = benchmark.pedantic(run_storm, rounds=1)
        finally:
            server.stop()
            service.close()
        total = clients * requests_each
        assert len(accepted) + shed_count == total
        assert shed_count >= 1, \
            "2x-capacity overload shed nothing: admission bound inert"
        assert all(error.retry_after is not None for error in sheds), \
            "shed responses carried no Retry-After pacing hint"
        ordered = sorted(accepted)
        p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]
        shed_rate = shed_count / total
        print(f"\noverload at 2x capacity ({clients} clients vs "
              f"{capacity} slots): {shed_count}/{total} shed "
              f"({shed_rate:.0%}), accepted p99 {p99 * 1000:.1f}ms")
        assert p99 < 0.5, (
            f"accepted-request p99 {p99:.3f}s: shedding failed to "
            f"protect admitted traffic")
        benchmark.extra_info["shed_rate"] = round(shed_rate, 4)
        benchmark.extra_info["shed_count"] = shed_count
        benchmark.extra_info["accepted_p99_ms"] = round(p99 * 1000, 3)
        benchmark.extra_info["capacity"] = capacity
        benchmark.extra_info["clients"] = clients

    def test_replica_reintegration_time_bounded(self, benchmark):
        """The PR-9 reintegration row: suspended replica back in
        rotation, repaired first, within a bounded wall clock.

        A replica dies, its breaker opens after 3 failed mirror writes,
        ~100 writes land on the primary alone, then the replica
        revives.  ``check_health`` must anti-entropy-repair the missed
        writes *before* rejoining it — the measured time is that whole
        repair-then-rejoin, and the floor keeps it an interactive
        operation rather than a background migration.
        """
        entries = make_entries(500)
        injector = FaultInjector()
        raw_replica = MemoryBackend()
        replica = FlakyBackend(raw_replica, injector, "bench.replica")
        pair = ReplicatedBackend(MemoryBackend(), [replica],
                                 failure_threshold=3)
        pair.add_many(entries[:400])  # both copies in sync
        replica.kill()
        for entry in entries[400:500]:  # primary-only writes
            pair.add(entry)
        assert pair.suspended_replicas() == (0,)
        missed = raw_replica.entry_count()
        replica.revive()

        def reintegrate() -> float:
            started = time.perf_counter()
            recovered = pair.check_health()
            elapsed = time.perf_counter() - started
            assert recovered == [0], recovered
            return elapsed

        elapsed = benchmark.pedantic(reintegrate, rounds=1)
        assert pair.reintegrations == 1
        assert pair.suspended_replicas() == ()
        assert raw_replica.entry_count() == 500, \
            "replica rejoined without the missed writes"
        print(f"\nreplica reintegration: {500 - missed} missed "
              f"entries repaired and rejoined in "
              f"{elapsed * 1000:.1f}ms")
        assert elapsed < 5.0
        benchmark.extra_info["reintegration_ms"] = round(elapsed * 1e3, 3)
        benchmark.extra_info["entries_repaired"] = 500 - missed
