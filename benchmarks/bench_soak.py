"""Soak & chaos rows for the trajectory: corpus factory throughput and
fault-injected soak runs whose full outcome (ops/s, per-op p50/p99,
per-fault recovery time, invariant-check count) rides into
``BENCH_PR<N>.json`` via ``extra_info``.

Two knobs come from the environment so the CI tiers share one file:

* ``SOAK_SECONDS`` — wall-clock per soak stack (default 10, so the two
  stacks together give the PR tier its >= 20 s of mixed traffic);
* ``SOAK_ENTRIES`` — corpus size per soak (default 3000).

The soak tests are **assertions first, timings second**: a run with any
invariant violation (stale read, oracle-divergent query, missed fault,
blown p99 bound) fails the benchmark job outright, not just a number in
a JSON file.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.harness.workloads import CorpusSpec, corpus_digest, corpus_entries
from repro.harness.soak import SoakConfig, SoakRunner, build_soak_stack

SOAK_SECONDS = float(os.environ.get("SOAK_SECONDS", "10"))
SOAK_ENTRIES = int(os.environ.get("SOAK_ENTRIES", "3000"))
SOAK_SEED = int(os.environ.get("SOAK_SEED", "7"))

#: The 100k corpus must generate-and-digest under this wall-clock
#: budget (seconds).  Measured ~31 µs/entry locally (~3.2 s for 100k);
#: the floor leaves generous CI headroom while still catching an
#: accidental quadratic in the factory.
CORPUS_100K_BUDGET_SECONDS = 60.0
CORPUS_100K = 100_000


def test_corpus_factory_100k(benchmark):
    """Generate + canonically encode + digest a 100k-entry corpus.

    ``pedantic(rounds=1)``: one full pass is the measurement — the
    corpus is deterministic, so repeat rounds would only re-measure the
    same arithmetic while quadrupling job time.
    """
    spec = CorpusSpec(count=CORPUS_100K, seed=SOAK_SEED)

    def factory():
        return corpus_digest(spec)

    started = time.perf_counter()
    digest = benchmark.pedantic(factory, rounds=1)
    elapsed = time.perf_counter() - started
    assert elapsed < CORPUS_100K_BUDGET_SECONDS, (
        f"100k corpus took {elapsed:.1f}s, over the "
        f"{CORPUS_100K_BUDGET_SECONDS:.0f}s budget")
    # Determinism is load-bearing for soak reproduction: pin the digest
    # shape and derived rate alongside the timing.
    assert len(digest) == 64
    benchmark.extra_info["entries"] = CORPUS_100K
    benchmark.extra_info["digest"] = digest
    benchmark.extra_info["entries_per_second"] = round(
        CORPUS_100K / elapsed, 1)


def test_corpus_stream_is_validated(benchmark):
    """Every generated entry passes template validation (sampled here
    at 2k; the digest test above exercises the full 100k shape)."""
    from repro.repository.validation import validate_entry

    spec = CorpusSpec(count=2000, seed=SOAK_SEED)

    def validate_all():
        bad = 0
        for entry in corpus_entries(spec):
            if not validate_entry(entry).ok:
                bad += 1
        return bad

    assert benchmark.pedantic(validate_all, rounds=1) == 0


def _run_soak(tmp_path, *, http: bool) -> "tuple":
    config = SoakConfig(
        seconds=SOAK_SECONDS,
        corpus=CorpusSpec(count=SOAK_ENTRIES, seed=SOAK_SEED),
        preload=min(SOAK_ENTRIES // 2, 20_000),
        seed=SOAK_SEED,
    )
    stack = build_soak_stack(tmp_path, shards=2, http=http)
    try:
        runner = SoakRunner(stack, config)
        report = runner.run()
    finally:
        stack.close()
    return report, runner


def _assert_soak_ok(report, *, expect_faults: "set[str]") -> None:
    assert report.ok, f"soak violations: {report.violations}"
    names = set()
    for record in report.faults:
        names.add(record.name.rsplit("-", 1)[0]
                  if record.name[-1].isdigit() else record.name)
    assert expect_faults <= names, (
        f"fault schedule incomplete: ran {sorted(names)}, "
        f"expected at least {sorted(expect_faults)}")
    # Every fault must have actually bitten (observable at its seam) —
    # divergence and bounce fire no injector point, so "fired" there is
    # proven by their recovery assertions instead.
    for record in report.faults:
        if record.name.startswith(("shard-kill", "file-crash",
                                   "brownout")):
            assert record.fired >= 1, f"{record.name} never fired"
    assert report.ops_total > 0 and report.invariant_checks >= 2


def test_soak_direct_stack(benchmark, tmp_path):
    """PR-tier soak, direct stack: sharded-of-replicated behind the
    service facade, with shard-kill + replica-divergence + file-crash
    faults injected mid-run."""

    def soak():
        return _run_soak(tmp_path / "direct", http=False)

    report, _runner = benchmark.pedantic(soak, rounds=1)
    _assert_soak_ok(report, expect_faults={
        "shard-kill", "replica-diverge", "file-crash", "brownout",
        "replica-recover", "ingest-burst"})
    benchmark.extra_info.update(report.extra_info())


def test_soak_http_stack(benchmark, tmp_path):
    """PR-tier soak, HTTP stack: the same composition fronted by a live
    ``RepositoryServer`` with ``HTTPBackend`` traffic, adding the
    server-bounce fault under keep-alive load."""

    def soak():
        return _run_soak(tmp_path / "http", http=True)

    report, _runner = benchmark.pedantic(soak, rounds=1)
    _assert_soak_ok(report, expect_faults={
        "shard-kill", "replica-diverge", "file-crash", "brownout",
        "replica-recover", "ingest-burst", "overload",
        "server-bounce"})
    benchmark.extra_info.update(report.extra_info())


def test_soak_recovery_times(benchmark, tmp_path):
    """A dedicated fault-recovery row: minimal traffic, all faults, the
    per-fault recovery milliseconds as first-class trajectory numbers."""
    config = SoakConfig(
        seconds=2.0,
        corpus=CorpusSpec(count=600, seed=SOAK_SEED + 1),
        preload=300,
        seed=SOAK_SEED + 1,
    )

    def soak():
        stack = build_soak_stack(tmp_path / "recovery", http=True)
        try:
            return SoakRunner(stack, config).run()
        finally:
            stack.close()

    report = benchmark.pedantic(soak, rounds=1)
    assert report.ok, f"soak violations: {report.violations}"
    assert len(report.faults) == 8
    for record in report.faults:
        benchmark.extra_info[f"recovery_ms_{record.name}"] = round(
            record.recovery_seconds * 1e3, 3)
    benchmark.extra_info["stack"] = report.stack


@pytest.mark.parametrize("seconds", [SOAK_SECONDS])
def test_soak_configuration_row(benchmark, seconds):
    """Record the tier configuration itself so a trajectory point is
    self-describing (which tier produced these soak numbers)."""
    benchmark.pedantic(lambda: None, rounds=1)
    benchmark.extra_info["soak_seconds_per_stack"] = seconds
    benchmark.extra_info["soak_entries"] = SOAK_ENTRIES
    benchmark.extra_info["soak_seed"] = SOAK_SEED
