"""E3–E6: cost of the mechanised reviewer (property verification).

Regenerates the paper's §4 property table by timing the randomized
verification of each claim on the Composers bx, plus the full
verify-claims pass an entry review would run.
"""

from __future__ import annotations

import pytest

from repro.catalogue.composers import composers_bx, composers_entry
from repro.core.laws import CheckConfig, verify_property_claims
from repro.core.properties import (
    Correct,
    Hippocratic,
    SimplyMatching,
    Undoable,
)

TRIALS = 100


@pytest.fixture(scope="module")
def bx():
    return composers_bx().checked()


@pytest.mark.parametrize("prop,expected_pass", [
    (Correct(), True),          # E3
    (Hippocratic(), True),      # E4
    (Undoable(), False),        # E5: must find the counterexample
    (SimplyMatching(), True),   # E6
], ids=["correct", "hippocratic", "undoable", "simply-matching"])
def test_property_check(benchmark, bx, prop, expected_pass):
    result = benchmark(prop.check, bx, TRIALS, 7)
    assert result.passed == expected_pass, result.describe()


def test_full_claim_verification(benchmark, bx):
    """The whole §4 claims table, as a reviewer would run it."""
    claims = composers_entry().claimed_properties()
    report = benchmark(verify_property_claims, composers_bx(), claims,
                       CheckConfig(trials=TRIALS, seed=7))
    assert report.all_passed, report.summary()
