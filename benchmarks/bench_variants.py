"""E9 ablation: what each §4 variant choice costs.

The variants differ in restoration policy, not asymptotics; this bench
makes the constant factors visible (key-on-name pays a dict build;
alphabetic insertion pays repeated scans; the remembering lens pays
complement maintenance).
"""

from __future__ import annotations

import pytest

from repro.catalogue.composers import (
    CanonicalOrderComposersBx,
    KeyOnNameComposersBx,
    RememberingComposersLens,
    composers_bx,
    composers_bx_with_position,
)
from repro.harness.generators import (
    consistent_composer_pair,
    random_pair_edit_script,
)

SIZE = 200


def perturbed_pair(seed: int):
    left, right = consistent_composer_pair(SIZE, seed=seed)
    script = random_pair_edit_script(right, 20, seed=seed)
    return left, script.apply(right)


@pytest.mark.parametrize("factory,name", [
    (lambda: composers_bx(), "base-end"),
    (lambda: composers_bx_with_position("front"), "front"),
    (lambda: composers_bx_with_position("alphabetic"), "alphabetic"),
    (lambda: CanonicalOrderComposersBx(), "canonical-order"),
], ids=["base-end", "front", "alphabetic", "canonical-order"])
def test_fwd_variant_cost(benchmark, factory, name):
    bx = factory()
    left, right = perturbed_pair(5)
    result = benchmark(bx.fwd, left, right)
    assert bx.consistent(left, result)


def test_key_on_name_bwd_cost(benchmark):
    """Name-keyed repair on name-keyed models of comparable size."""
    bx = KeyOnNameComposersBx()
    import random
    rng = random.Random(6)
    left = bx.left_space.sample(rng)
    right = bx.right_space.sample(rng)
    result = benchmark(bx.bwd, left, right)
    assert bx.consistent(result, right)


def test_remembering_lens_session_cost(benchmark):
    """putl/putr round trips with a growing complement."""
    lens = RememberingComposersLens()
    left, right = consistent_composer_pair(50, seed=7)

    def session():
        listing, complement = lens.putr(left, lens.missing())
        shrunk = listing[: len(listing) // 2]
        _model, complement = lens.putl(shrunk, complement)
        model, complement = lens.putl(listing, complement)
        return model

    model = benchmark(session)
    assert model == left  # memory restored every composer
