"""Normalise a pytest-benchmark JSON dump into a trajectory file.

CI's ``bench-trend`` job runs the benchmark suite with
``--benchmark-json=bench-raw.json`` and then::

    PYTHONPATH=src python benchmarks/trend.py bench-raw.json --label PR7

which writes ``BENCH_PR7.json`` **at the repository root** (override
with ``--out``) and uploads it as a workflow artifact.  Writing at the
root — not the invoking directory — is what lets a trajectory point be
committed next to the code it measures, so the perf history accumulates
in the repository itself instead of evaporating with expired CI
artifacts.  The heavy lifting lives in
:func:`repro.harness.reporting.normalise_benchmark_json` so it is unit
tested with the rest of the harness; this file is only the CLI shell.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from repro.harness.reporting import normalise_benchmark_json

#: The repository root (this file lives in <root>/benchmarks/).
REPO_ROOT = Path(__file__).resolve().parent.parent


def default_out(label: str) -> Path:
    """Where a trajectory point lands by default: the repo root."""
    return REPO_ROOT / f"BENCH_{label}.json"


def is_committed(path: Path) -> bool:
    """True when ``path`` is tracked by git (i.e. a committed history
    point, not a scratch file from a local run)."""
    try:
        result = subprocess.run(
            ["git", "ls-files", "--error-unmatch", path.name],
            cwd=path.parent, capture_output=True, timeout=30)
    except (OSError, subprocess.SubprocessError):
        return False
    return result.returncode == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("raw", type=Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--label", required=True,
                        help="trajectory point name, e.g. PR7")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default <repo>/BENCH_<label>.json)")
    parser.add_argument("--force", action="store_true",
                        help="overwrite an existing committed trajectory "
                             "point (without this, a label collision with "
                             "a git-tracked BENCH file is an error)")
    arguments = parser.parse_args(argv)

    raw = json.loads(arguments.raw.read_text())
    trend = normalise_benchmark_json(raw, label=arguments.label)
    out = arguments.out or default_out(arguments.label)
    if out.exists() and not arguments.force and is_committed(out):
        # A committed trajectory point is history: silently replacing
        # it rewrites a past PR's measurements.  Uncommitted files are
        # scratch from a previous local run and fair game.
        print(f"refusing to overwrite committed trajectory point {out} "
              f"(label {arguments.label} is already claimed); "
              f"pick a new --label or pass --force", file=sys.stderr)
        return 1
    out.write_text(json.dumps(trend, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({trend['benchmark_count']} benchmarks, "
          f"label {trend['label']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
