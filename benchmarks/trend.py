"""Normalise a pytest-benchmark JSON dump into a trajectory file.

CI's ``bench-trend`` job runs the benchmark suite with
``--benchmark-json=bench-raw.json`` and then::

    PYTHONPATH=src python benchmarks/trend.py bench-raw.json --label PR7

which writes ``BENCH_PR7.json`` (override with ``--out``) and uploads
it as a workflow artifact.  The heavy lifting lives in
:func:`repro.harness.reporting.normalise_benchmark_json` so it is unit
tested with the rest of the harness; this file is only the CLI shell.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.harness.reporting import normalise_benchmark_json


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("raw", type=Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--label", required=True,
                        help="trajectory point name, e.g. PR7")
    parser.add_argument("--out", type=Path, default=None,
                        help="output path (default BENCH_<label>.json)")
    arguments = parser.parse_args(argv)

    raw = json.loads(arguments.raw.read_text())
    trend = normalise_benchmark_json(raw, label=arguments.label)
    out = arguments.out or Path(f"BENCH_{arguments.label}.json")
    out.write_text(json.dumps(trend, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({trend['benchmark_count']} benchmarks, "
          f"label {trend['label']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
